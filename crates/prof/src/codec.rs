//! `PROF_*.json` serialization: schema-versioned render, validating
//! parse (the fuzzed ingest surface), and the human-readable report.
//!
//! Error phrasing contract (shared with the other fuzzed parsers):
//! entry-scoped problems carry a position (`profile spans entry N: …`);
//! envelope problems are document-level and start with
//! `profile document`.

use crate::profile::{ChainLink, Lane, Profile, SpanProfile};
use crate::{fmt_ns, PROF_KIND, PROF_SCHEMA_VERSION};
use std::fmt::Write as _;
use tc_obs::JsonValue;

impl Profile {
    /// Builds the schema-versioned JSON document.
    pub fn to_json(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("name", JsonValue::str(s.name.as_str())),
                    ("count", JsonValue::from(s.count)),
                    ("total_ns", JsonValue::from(s.total_ns)),
                    ("self_ns", JsonValue::from(s.self_ns)),
                    ("child_ns", JsonValue::from(s.child_ns)),
                    ("min_ns", JsonValue::from(s.min_ns)),
                    ("max_ns", JsonValue::from(s.max_ns)),
                    ("p50_ns", JsonValue::from(s.p50_ns)),
                    ("p90_ns", JsonValue::from(s.p90_ns)),
                    ("p99_ns", JsonValue::from(s.p99_ns)),
                    ("net_bytes", JsonValue::from(s.net_bytes)),
                ])
            })
            .collect();
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                JsonValue::obj([
                    ("tid", JsonValue::from(l.tid)),
                    ("name", JsonValue::str(l.name.as_str())),
                    ("busy_ns", JsonValue::from(l.busy_ns)),
                    ("idle_ns", JsonValue::from(l.idle_ns)),
                ])
            })
            .collect();
        let chain = self
            .critical_chain
            .iter()
            .map(|c| {
                JsonValue::obj([
                    ("name", JsonValue::str(c.name.as_str())),
                    ("self_ns", JsonValue::from(c.self_ns)),
                ])
            })
            .collect();
        JsonValue::obj([
            ("schema_version", JsonValue::from(PROF_SCHEMA_VERSION)),
            ("kind", JsonValue::str(PROF_KIND)),
            ("workload", JsonValue::str(self.workload.as_str())),
            ("wall_ns", JsonValue::from(self.wall_ns)),
            ("attributed_ns", JsonValue::from(self.attributed_ns)),
            ("dropped_events", JsonValue::from(self.dropped_events)),
            ("unmatched_ends", JsonValue::from(self.unmatched_ends)),
            ("open_spans", JsonValue::from(self.open_spans)),
            ("spans", JsonValue::Arr(spans)),
            ("lanes", JsonValue::Arr(lanes)),
            ("critical_chain", JsonValue::Arr(chain)),
            ("critical_chain_ns", JsonValue::from(self.critical_chain_ns)),
        ])
    }

    /// Compact JSON text of [`Profile::to_json`].
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Parses and validates a `PROF_*.json` document. The inverse of
    /// [`Profile::render_json`]: parse-then-render is a fixpoint.
    ///
    /// # Errors
    ///
    /// Document-level messages (`profile document …`) for envelope
    /// problems, positioned messages (`profile spans entry N: …`) for
    /// entry problems. Validation enforces the accounting invariants
    /// the builder guarantees: `self + child = total`, monotone
    /// percentiles inside `[min, max]`, lanes that tile the wall, and a
    /// critical chain whose links name known spans and sum to
    /// `critical_chain_ns`.
    pub fn parse(text: &str) -> Result<Profile, String> {
        let doc =
            JsonValue::parse(text).map_err(|e| format!("profile document parse error: {e}"))?;
        let JsonValue::Obj(top) = doc else {
            return Err("profile document is not an object".to_string());
        };
        let version = req_u64(&top, "schema_version", "profile document")?;
        if version != PROF_SCHEMA_VERSION {
            return Err(format!(
                "profile document schema_version {version} unsupported (expected {PROF_SCHEMA_VERSION})"
            ));
        }
        let kind = req_str(&top, "kind", "profile document")?;
        if kind != PROF_KIND {
            return Err(format!(
                "profile document kind \"{kind}\" is not \"{PROF_KIND}\""
            ));
        }
        let workload = req_str(&top, "workload", "profile document")?;
        let wall_ns = req_u64(&top, "wall_ns", "profile document")?;
        let attributed_ns = req_u64(&top, "attributed_ns", "profile document")?;
        if attributed_ns > wall_ns {
            return Err("profile document attributed_ns exceeds wall_ns".to_string());
        }
        let dropped_events = req_u64(&top, "dropped_events", "profile document")?;
        let unmatched_ends = req_u64(&top, "unmatched_ends", "profile document")?;
        let open_spans = req_u64(&top, "open_spans", "profile document")?;

        let raw_spans = req_arr(&top, "spans", "profile document")?;
        let mut spans = Vec::with_capacity(raw_spans.len());
        for (i, entry) in raw_spans.iter().enumerate() {
            let ctx = format!("profile spans entry {i}");
            let JsonValue::Obj(fields) = entry else {
                return Err(format!("{ctx}: not an object"));
            };
            let s = SpanProfile {
                name: req_str(fields, "name", &ctx)?,
                count: req_u64(fields, "count", &ctx)?,
                total_ns: req_u64(fields, "total_ns", &ctx)?,
                self_ns: req_u64(fields, "self_ns", &ctx)?,
                child_ns: req_u64(fields, "child_ns", &ctx)?,
                min_ns: req_u64(fields, "min_ns", &ctx)?,
                max_ns: req_u64(fields, "max_ns", &ctx)?,
                p50_ns: req_u64(fields, "p50_ns", &ctx)?,
                p90_ns: req_u64(fields, "p90_ns", &ctx)?,
                p99_ns: req_u64(fields, "p99_ns", &ctx)?,
                net_bytes: req_i64(fields, "net_bytes", &ctx)?,
            };
            if s.name.is_empty() {
                return Err(format!("{ctx}: empty name"));
            }
            if spans.iter().any(|p: &SpanProfile| p.name == s.name) {
                return Err(format!("{ctx}: duplicate name \"{}\"", s.name));
            }
            if s.count == 0 {
                return Err(format!("{ctx}: zero count"));
            }
            if s.self_ns.checked_add(s.child_ns) != Some(s.total_ns) {
                return Err(format!("{ctx}: self_ns + child_ns != total_ns"));
            }
            if s.min_ns > s.max_ns {
                return Err(format!("{ctx}: min_ns exceeds max_ns"));
            }
            if s.max_ns > s.total_ns {
                return Err(format!("{ctx}: max_ns exceeds total_ns"));
            }
            if s.p50_ns > s.p90_ns || s.p90_ns > s.p99_ns {
                return Err(format!("{ctx}: percentiles not monotone"));
            }
            if s.p50_ns < s.min_ns || s.p99_ns > s.max_ns {
                return Err(format!("{ctx}: percentiles outside [min_ns, max_ns]"));
            }
            spans.push(s);
        }

        let raw_lanes = req_arr(&top, "lanes", "profile document")?;
        let mut lanes = Vec::with_capacity(raw_lanes.len());
        for (i, entry) in raw_lanes.iter().enumerate() {
            let ctx = format!("profile lanes entry {i}");
            let JsonValue::Obj(fields) = entry else {
                return Err(format!("{ctx}: not an object"));
            };
            let l = Lane {
                tid: req_u64(fields, "tid", &ctx)?,
                name: req_str(fields, "name", &ctx)?,
                busy_ns: req_u64(fields, "busy_ns", &ctx)?,
                idle_ns: req_u64(fields, "idle_ns", &ctx)?,
            };
            if lanes.iter().any(|p: &Lane| p.tid == l.tid) {
                return Err(format!("{ctx}: duplicate tid {}", l.tid));
            }
            if l.busy_ns.checked_add(l.idle_ns) != Some(wall_ns) {
                return Err(format!("{ctx}: busy_ns + idle_ns != wall_ns"));
            }
            lanes.push(l);
        }

        let raw_chain = req_arr(&top, "critical_chain", "profile document")?;
        let mut critical_chain = Vec::with_capacity(raw_chain.len());
        for (i, entry) in raw_chain.iter().enumerate() {
            let ctx = format!("profile critical_chain entry {i}");
            let JsonValue::Obj(fields) = entry else {
                return Err(format!("{ctx}: not an object"));
            };
            let link = ChainLink {
                name: req_str(fields, "name", &ctx)?,
                self_ns: req_u64(fields, "self_ns", &ctx)?,
            };
            let Some(span) = spans.iter().find(|s| s.name == link.name) else {
                return Err(format!("{ctx}: names unknown span \"{}\"", link.name));
            };
            if link.self_ns > span.self_ns {
                return Err(format!(
                    "{ctx}: self_ns exceeds the span's aggregate self_ns"
                ));
            }
            critical_chain.push(link);
        }
        let critical_chain_ns = req_u64(&top, "critical_chain_ns", "profile document")?;
        let chain_sum: u64 = critical_chain.iter().map(|l| l.self_ns).sum();
        if chain_sum != critical_chain_ns {
            return Err(
                "profile document critical_chain_ns does not equal the chain's self_ns sum"
                    .to_string(),
            );
        }

        Ok(Profile {
            workload,
            wall_ns,
            attributed_ns,
            dropped_events,
            unmatched_ends,
            open_spans,
            spans,
            lanes,
            critical_chain,
            critical_chain_ns,
        })
    }

    /// Human-readable report: header, top spans by self time, lanes,
    /// critical chain. `top` bounds the span table (0 = all).
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        let label = if self.workload.is_empty() {
            "(unlabeled)"
        } else {
            &self.workload
        };
        let _ = writeln!(out, "profile: {label}");
        let _ = writeln!(
            out,
            "wall {} · attributed {} ({:.1}%) · parallelism {:.2}x · {} lane(s)",
            fmt_ns(self.wall_ns),
            fmt_ns(self.attributed_ns),
            self.coverage() * 100.0,
            self.parallelism(),
            self.lanes.len(),
        );
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} trace event(s) dropped to ring overflow — self-time below is \
                 truncated; raise the enable_trace capacity",
                self.dropped_events
            );
        }
        if self.unmatched_ends > 0 || self.open_spans > 0 {
            let _ = writeln!(
                out,
                "note: {} unmatched end(s), {} span(s) still open at trace end",
                self.unmatched_ends, self.open_spans
            );
        }
        let shown = if top == 0 {
            self.spans.len()
        } else {
            top.min(self.spans.len())
        };
        let _ = writeln!(
            out,
            "\n{:<32} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "self", "child", "p50", "p99", "net"
        );
        for s in &self.spans[..shown] {
            let _ = writeln!(
                out,
                "{:<32} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns),
                fmt_ns(s.child_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns),
                tc_obs::fmt_bytes(s.net_bytes),
            );
        }
        if shown < self.spans.len() {
            let _ = writeln!(out, "… {} more span(s)", self.spans.len() - shown);
        }
        let _ = writeln!(out, "\nlanes:");
        for l in &self.lanes {
            let pct = if self.wall_ns == 0 {
                100.0
            } else {
                l.busy_ns as f64 / self.wall_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  tid {:<3} {:<12} busy {:>10} ({:5.1}%)  idle {:>10}",
                l.tid,
                l.name,
                fmt_ns(l.busy_ns),
                pct,
                fmt_ns(l.idle_ns),
            );
        }
        if !self.critical_chain.is_empty() {
            let path: Vec<&str> = self
                .critical_chain
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "\ncritical chain ({}): {}",
                fmt_ns(self.critical_chain_ns),
                path.join(" > ")
            );
        }
        out
    }
}

fn get<'a>(pairs: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_num(pairs: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<f64, String> {
    match get(pairs, key) {
        Some(JsonValue::Num(x)) if x.is_finite() => Ok(*x),
        Some(_) => Err(format!("{ctx}: field {key} is not a finite number")),
        None => Err(format!("{ctx}: missing field {key}")),
    }
}

fn req_u64(pairs: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<u64, String> {
    let x = req_num(pairs, key, ctx)?;
    if x < 0.0 || x.fract() != 0.0 || x > 9.0e15 {
        return Err(format!(
            "{ctx}: field {key} is not a non-negative integer in range"
        ));
    }
    Ok(x as u64)
}

fn req_i64(pairs: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<i64, String> {
    let x = req_num(pairs, key, ctx)?;
    if x.fract() != 0.0 || x.abs() > 9.0e15 {
        return Err(format!("{ctx}: field {key} is not an integer in range"));
    }
    Ok(x as i64)
}

fn req_str(pairs: &[(String, JsonValue)], key: &str, ctx: &str) -> Result<String, String> {
    match get(pairs, key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{ctx}: field {key} is not a string")),
        None => Err(format!("{ctx}: missing field {key}")),
    }
}

fn req_arr<'a>(
    pairs: &'a [(String, JsonValue)],
    key: &str,
    ctx: &str,
) -> Result<&'a [JsonValue], String> {
    match get(pairs, key) {
        Some(JsonValue::Arr(items)) => Ok(items),
        Some(_) => Err(format!("{ctx}: field {key} is not an array")),
        None => Err(format!("{ctx}: missing field {key}")),
    }
}
