//! Counting-allocator integration tests. Allocator state is global and
//! process-cumulative (this file is its own test binary, so enabling
//! counting here cannot perturb the other suites), and the tests
//! serialize on a lock because deltas are process-wide.

use std::sync::Mutex;

static MEM_LOCK: Mutex<()> = Mutex::new(());

const MIB: usize = 1 << 20;

#[test]
fn alloc_and_free_are_accounted() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::enable_memory();
    let before = tc_obs::memory_stats();
    let mark = tc_obs::heap_mark();
    let buf = vec![7u8; 4 * MIB];
    let mid = tc_obs::memory_stats();
    assert!(mid.allocs > before.allocs, "allocation event counted");
    assert!(
        mid.allocated_bytes >= before.allocated_bytes + (4 * MIB) as u64,
        "allocated bytes cover the buffer"
    );
    assert!(
        mark.delta().net_bytes >= (4 * MIB) as i64,
        "net live bytes grew by at least the buffer"
    );
    drop(buf);
    let after = tc_obs::memory_stats();
    assert!(after.frees > mid.frees, "free event counted");
    assert!(
        after.freed_bytes >= mid.freed_bytes + (4 * MIB) as u64,
        "freed bytes cover the buffer"
    );
    // Alloc+free nets out (modulo unrelated small allocations from the
    // test harness while we held the buffer).
    assert!(
        mark.delta().net_bytes < (2 * MIB) as i64,
        "net settles well below the buffer size after the free"
    );
    tc_obs::disable_memory();
}

#[test]
fn peak_is_monotonic_across_alloc_and_free() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::enable_memory();
    let p0 = tc_obs::memory_stats().peak_bytes;
    let buf = vec![1u8; 8 * MIB];
    let p1 = tc_obs::memory_stats().peak_bytes;
    assert!(p1 >= p0, "peak never decreases on allocation");
    drop(buf);
    let p2 = tc_obs::memory_stats().peak_bytes;
    assert!(p2 >= p1, "peak never decreases on free");
    // A second, larger burst must push the tracked peak past the live
    // level it started from.
    let live = tc_obs::memory_stats().live_bytes;
    let big = vec![2u8; 16 * MIB];
    let p3 = tc_obs::memory_stats().peak_bytes;
    assert!(
        p3 >= live + (16 * MIB) as u64,
        "peak covers live + burst: peak {p3}, live-before {live}"
    );
    drop(big);
    tc_obs::disable_memory();
}

#[test]
fn disabled_counting_moves_nothing() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::disable_memory();
    let before = tc_obs::memory_stats();
    let buf = vec![3u8; 2 * MIB];
    drop(buf);
    let after = tc_obs::memory_stats();
    assert_eq!(before, after, "disabled counting is inert");
}

#[test]
fn spans_attribute_heap_to_the_right_subtree() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::reset();
    tc_obs::enable();
    tc_obs::enable_memory();
    let held;
    {
        let _outer = tc_obs::span("t_mem.outer");
        held = vec![5u8; 4 * MIB]; // stays live across the span close
        {
            let _inner = tc_obs::span("t_mem.inner");
            let scratch = vec![6u8; 2 * MIB]; // freed before the close
            drop(scratch);
        }
    }
    let snap = tc_obs::snapshot();
    let outer = snap.span("t_mem.outer").expect("outer recorded");
    let inner = snap
        .span("t_mem.outer/t_mem.inner")
        .expect("inner nested under outer");
    assert!(
        outer.net_bytes >= (4 * MIB) as i64,
        "outer keeps its held buffer: net {}",
        outer.net_bytes
    );
    assert!(
        inner.net_bytes < (2 * MIB) as i64,
        "inner freed its scratch: net {}",
        inner.net_bytes
    );
    // mem.* counters join the snapshot while counting is on.
    assert!(snap.counter("mem.allocs") > 0);
    assert!(snap.counter("mem.peak_heap_bytes") >= snap.counter("mem.live_bytes"));
    drop(held);
    tc_obs::disable_memory();
    tc_obs::disable();
}

#[test]
fn vm_probes_agree_with_the_platform() {
    let _guard = MEM_LOCK.lock().unwrap();
    if cfg!(target_os = "linux") {
        let hwm = tc_obs::vm_hwm_bytes().expect("VmHWM readable on Linux");
        let rss = tc_obs::vm_rss_bytes().expect("VmRSS readable on Linux");
        assert!(hwm >= rss, "high-water mark bounds current RSS");
        assert!(hwm > 0);
    } else {
        assert_eq!(tc_obs::vm_hwm_bytes(), None);
        assert_eq!(tc_obs::vm_rss_bytes(), None);
    }
}

#[test]
fn run_artifact_carries_the_memory_section() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::enable_memory();
    let _buf = vec![9u8; MIB];
    let art = tc_obs::RunArtifact::new("t_mem_artifact")
        .wall_ms(1.0)
        .capture_memory();
    let text = art.render();
    tc_obs::disable_memory();
    let doc = tc_obs::JsonValue::parse(&text).expect("artifact parses");
    let tc_obs::JsonValue::Obj(fields) = doc else {
        panic!("artifact is not an object");
    };
    let (_, mem) = fields
        .iter()
        .find(|(k, _)| k == "memory")
        .expect("memory section present");
    let tc_obs::JsonValue::Obj(mem) = mem else {
        panic!("memory section is not an object");
    };
    for key in [
        "total_allocs",
        "total_frees",
        "allocated_bytes",
        "freed_bytes",
        "live_bytes",
        "peak_heap_bytes",
        "vm_hwm_bytes",
        "vm_rss_bytes",
    ] {
        assert!(
            mem.iter().any(|(k, _)| k == key),
            "memory section has {key}"
        );
    }
}

#[test]
fn disabled_artifact_capture_is_a_no_op() {
    let _guard = MEM_LOCK.lock().unwrap();
    tc_obs::disable_memory();
    let text = tc_obs::RunArtifact::new("t_mem_absent")
        .capture_memory()
        .render();
    assert!(
        !text.contains("\"memory\""),
        "no memory section while counting is off"
    );
}
