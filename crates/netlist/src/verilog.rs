//! Structural-Verilog export and import.
//!
//! The gate-level netlist is the handoff artifact between synthesis and
//! physical design; this module writes a netlist as a flat structural
//! Verilog module (instances of library masters with named port
//! connections) and parses that subset back, so designs can be stored,
//! diffed, or exchanged with other tools.
//!
//! Subset: one `module` with `input`/`output`/`wire` declarations and
//! instantiations of the form `MASTER name (.A(net), .B(net), .Y(net));`.

use std::collections::HashMap;
use std::fmt::Write as _;

use tc_core::error::{Error, Result};
use tc_core::ids::NetId;
use tc_liberty::Library;

use crate::graph::Netlist;

/// A parsed instantiation: (master, instance name, port connections).
type ParsedInstance = (String, String, Vec<(String, String)>);

/// Sanitizes a net name into a Verilog identifier.
fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 'n');
    }
    s
}

/// Serializes a netlist to structural Verilog.
pub fn write_verilog(nl: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let net_name = |id: NetId| ident(&nl.net(id).name);

    let inputs: Vec<String> = nl.primary_inputs().iter().map(|&n| net_name(n)).collect();
    let outputs: Vec<String> = nl.primary_outputs().map(net_name).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().cloned());

    let _ = writeln!(out, "module {} ({});", ident(&nl.name), ports.join(", "));
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    // Internal wires: every net that is neither a PI nor a PO.
    for (i, net) in nl.nets().iter().enumerate() {
        let id = NetId::new(i);
        if nl.primary_inputs().contains(&id) || net.is_output {
            continue;
        }
        let _ = writeln!(out, "  wire {};", net_name(id));
    }
    let _ = writeln!(out);

    for cell in nl.cells() {
        let master = lib.cell(cell.master);
        let mut conns: Vec<String> = master
            .input_pins()
            .iter()
            .zip(&cell.inputs)
            .map(|(pin, &net)| format!(".{pin}({})", net_name(net)))
            .collect();
        conns.push(format!(".Y({})", net_name(cell.output)));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            master.name,
            ident(&cell.name),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Parses the structural subset produced by [`write_verilog`] back into
/// a [`Netlist`] bound to `lib`.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for unknown masters, undeclared nets,
/// missing pins, or syntax outside the supported subset.
pub fn parse_verilog(text: &str, lib: &Library) -> Result<Netlist> {
    // Join statements (";"-terminated) across lines.
    let body: String = text
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join(" ");

    let mut nl = Netlist::new("parsed");
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    // Instances must be created after all declarations; collect them as
    // (master, instance, port connections).
    let mut instances: Vec<ParsedInstance> = Vec::new();

    for stmt in body.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest.split('(').next().unwrap_or("parsed").trim();
            nl.name = name.to_string();
        } else if let Some(rest) = stmt.strip_prefix("input ") {
            for n in rest.split(',') {
                let n = n.trim();
                if !n.is_empty() {
                    let id = nl.add_input(n);
                    nets.insert(n.to_string(), id);
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for n in rest.split(',') {
                outputs.push(n.trim().to_string());
            }
        } else if stmt.strip_prefix("wire ").is_some() {
            // Wires are implied by driver outputs; nothing to pre-create.
        } else {
            // Instance: MASTER name (.PIN(net), ...)
            let open = stmt
                .find('(')
                .ok_or_else(|| Error::invalid_input(format!("bad statement: {stmt}")))?;
            let head: Vec<&str> = stmt[..open].split_whitespace().collect();
            if head.len() != 2 {
                return Err(Error::invalid_input(format!("bad instance head: {stmt}")));
            }
            let conns_str = &stmt[open + 1..stmt.rfind(')').unwrap_or(stmt.len())];
            let mut conns = Vec::new();
            for c in conns_str.split(',') {
                let c = c.trim().trim_start_matches('.');
                let (pin, net) = c
                    .split_once('(')
                    .ok_or_else(|| Error::invalid_input(format!("bad connection: {c}")))?;
                conns.push((
                    pin.trim().to_string(),
                    net.trim_end_matches(')').trim().to_string(),
                ));
            }
            instances.push((head[0].to_string(), head[1].to_string(), conns));
        }
    }

    // Instance order in the file is arbitrary, but `add_cell` needs its
    // input nets up front. Create every instance with a placeholder
    // input first (an existing PI), then rewire once all output nets
    // exist.
    let scratch = nl
        .primary_inputs()
        .first()
        .copied()
        .unwrap_or_else(|| nl.add_input("__scratch__"));
    let mut pending: Vec<(tc_core::ids::CellId, Vec<(usize, String)>)> = Vec::new();
    for (master_name, inst_name, conns) in &instances {
        let master = lib
            .id_of(master_name)
            .ok_or_else(|| Error::not_found(format!("master {master_name}")))?;
        let pins = lib.cell(master).input_pins();
        let placeholder = vec![scratch; pins.len()];
        let (cid, out_net) = nl.add_cell(inst_name.clone(), lib, master, &placeholder)?;
        // The instance's Y connection names its output net.
        let y = conns
            .iter()
            .find(|(p, _)| p == "Y")
            .ok_or_else(|| Error::invalid_input(format!("{inst_name}: no Y connection")))?;
        nets.insert(y.1.clone(), out_net);
        let mut wiring = Vec::new();
        for (idx, pin) in pins.iter().enumerate() {
            let conn = conns
                .iter()
                .find(|(p, _)| p == pin)
                .ok_or_else(|| Error::invalid_input(format!("{inst_name}: missing pin {pin}")))?;
            wiring.push((idx, conn.1.clone()));
        }
        pending.push((cid, wiring));
    }
    for (cid, wiring) in pending {
        for (pin, net_name) in wiring {
            let net = *nets
                .get(&net_name)
                .ok_or_else(|| Error::not_found(format!("net {net_name}")))?;
            nl.rewire_input(crate::graph::PinRef { cell: cid, pin }, net);
        }
    }
    for o in outputs {
        let net = *nets
            .get(&o)
            .ok_or_else(|| Error::not_found(format!("output net {o}")))?;
        nl.mark_output(net);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, BenchProfile};
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = lib();
        let orig = generate(&lib, BenchProfile::tiny(), 55).unwrap();
        let text = write_verilog(&orig, &lib);
        assert!(text.contains("module tiny"));
        assert!(text.contains("endmodule"));

        let parsed = parse_verilog(&text, &lib).unwrap();
        parsed.validate(&lib).unwrap();
        assert_eq!(parsed.cell_count(), orig.cell_count());
        assert_eq!(
            parsed.primary_outputs().count(),
            orig.primary_outputs().count()
        );

        // Per-instance master binding survives.
        for cell in orig.cells() {
            let pc = parsed
                .cell_named(&cell.name)
                .expect("instance name preserved");
            assert_eq!(parsed.cell(pc).master, cell.master, "cell {}", cell.name);
        }

        // Connectivity: same driver-master for every input pin.
        for cell in orig.cells() {
            let pid = parsed.cell_named(&cell.name).unwrap();
            for (i, &net) in cell.inputs.iter().enumerate() {
                let want_driver = orig.net(net).driver.map(|d| orig.cell(d).name.clone());
                let pnet = parsed.cell(pid).inputs[i];
                let got_driver = parsed.net(pnet).driver.map(|d| parsed.cell(d).name.clone());
                assert_eq!(want_driver, got_driver, "cell {} pin {i}", cell.name);
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_master() {
        let lib = lib();
        let bad = "module m (a); input a; FOO_X1 u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn parse_rejects_missing_pin() {
        let lib = lib();
        let bad = "module m (a); input a; NAND2_X1_SVT u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(ident("a.b-c"), "a_b_c");
        assert_eq!(ident("3x"), "n3x");
    }
}
