//! PVT corner definitions and delay scaling.
//!
//! The paper distinguishes SS (global + local variation) from SSG
//! ("global corner", local variation left to AOCV/POCV/LVF), and notes
//! that cross-corners (FS, SF) are increasingly required for clock
//! signoff (§1.2 footnote, §4). Voltage/temperature scaling is derived
//! from the `tc-device` alpha-power model, so a corner at 0.6 V / −30 °C
//! is slower than at 0.6 V / 125 °C (temperature inversion) without any
//! special-casing here.

use std::fmt;

use tc_core::units::{Celsius, Volt};
use tc_device::{MosDevice, MosKind, Technology, VtClass};

/// Global FEOL process corner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProcessCorner {
    /// Slow NMOS, slow PMOS, including on-die mismatch allowance.
    Ss,
    /// Slow "global" corner: global variation only, local variation left
    /// to the OCV/POCV/LVF models (the modern signoff style).
    Ssg,
    /// Typical.
    #[default]
    Tt,
    /// Fast global corner.
    Ffg,
    /// Fast, including mismatch allowance.
    Ff,
    /// Cross-corner: slow NMOS / fast PMOS (clock-network signoff).
    Sf,
    /// Cross-corner: fast NMOS / slow PMOS.
    Fs,
}

impl ProcessCorner {
    /// All corners a full signoff would enumerate.
    pub const ALL: [ProcessCorner; 7] = [
        ProcessCorner::Ss,
        ProcessCorner::Ssg,
        ProcessCorner::Tt,
        ProcessCorner::Ffg,
        ProcessCorner::Ff,
        ProcessCorner::Sf,
        ProcessCorner::Fs,
    ];

    /// Multiplier on device drive resistance (>1 = slower than typical).
    ///
    /// SS carries more margin than SSG because it folds the on-die
    /// mismatch in; SSG leaves that to the variation model (paper §1.2).
    pub fn drive_factor(self) -> f64 {
        match self {
            ProcessCorner::Ss => 1.28,
            ProcessCorner::Ssg => 1.20,
            ProcessCorner::Tt => 1.0,
            ProcessCorner::Ffg => 0.85,
            ProcessCorner::Ff => 0.80,
            // Cross corners sit near typical on average but skew the
            // P/N balance; the skew matters for clock duty/skew checks.
            ProcessCorner::Sf => 1.04,
            ProcessCorner::Fs => 0.98,
        }
    }

    /// Multiplier on leakage current (fast silicon leaks more).
    pub fn leakage_factor(self) -> f64 {
        match self {
            ProcessCorner::Ss => 0.4,
            ProcessCorner::Ssg => 0.45,
            ProcessCorner::Tt => 1.0,
            ProcessCorner::Ffg => 2.2,
            ProcessCorner::Ff => 2.6,
            ProcessCorner::Sf | ProcessCorner::Fs => 1.1,
        }
    }

    /// Short signoff-report name.
    pub fn name(self) -> &'static str {
        match self {
            ProcessCorner::Ss => "SS",
            ProcessCorner::Ssg => "SSG",
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ffg => "FFG",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Sf => "SF",
            ProcessCorner::Fs => "FS",
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A full PVT analysis corner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PvtCorner {
    /// Global process corner.
    pub process: ProcessCorner,
    /// Supply voltage.
    pub voltage: Volt,
    /// Die temperature.
    pub temperature: Celsius,
}

impl PvtCorner {
    /// Typical-typical at nominal planar supply, room temperature — the
    /// "signoff at typical" corner AVS enables (paper §1.3).
    pub fn typical() -> Self {
        PvtCorner {
            process: ProcessCorner::Tt,
            voltage: Volt::new(0.9),
            temperature: Celsius::new(25.0),
        }
    }

    /// Classic worst-setup corner: slow global silicon, low V, low T
    /// (below the temperature-reversal point, cold is slow).
    pub fn slow_cold() -> Self {
        PvtCorner {
            process: ProcessCorner::Ssg,
            voltage: Volt::new(0.81),
            temperature: Celsius::new(-30.0),
        }
    }

    /// Slow, low V, hot — required *in addition to* `slow_cold` when the
    /// signoff voltage is near the reversal point (paper Fig 6b).
    pub fn slow_hot() -> Self {
        PvtCorner {
            process: ProcessCorner::Ssg,
            voltage: Volt::new(0.81),
            temperature: Celsius::new(125.0),
        }
    }

    /// Classic best-case (hold-risk) corner: fast silicon, high V, cold.
    pub fn fast_cold() -> Self {
        PvtCorner {
            process: ProcessCorner::Ffg,
            voltage: Volt::new(0.99),
            temperature: Celsius::new(-30.0),
        }
    }

    /// A descriptive name like `SSG_0.81V_-30C`.
    pub fn label(&self) -> String {
        format!(
            "{}_{:.2}V_{:.0}C",
            self.process,
            self.voltage.value(),
            self.temperature.value()
        )
    }

    /// Delay multiplier relative to [`PvtCorner::typical`] for a device of
    /// the given Vt class, combining the process drive factor with the
    /// device model's voltage/temperature behaviour (delay ∝ C·V/Idsat).
    pub fn delay_factor(&self, tech: &Technology, vt: VtClass) -> f64 {
        let dev = MosDevice::new(MosKind::Nmos, vt, 1.0);
        let typ = PvtCorner::typical();
        let d_here = self.voltage.value() / dev.idsat(tech, self.voltage, self.temperature);
        let d_typ = typ.voltage.value() / dev.idsat(tech, typ.voltage, typ.temperature);
        self.process.drive_factor() * d_here / d_typ
    }
}

impl fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_factors_are_ordered() {
        assert!(ProcessCorner::Ss.drive_factor() > ProcessCorner::Ssg.drive_factor());
        assert!(ProcessCorner::Ssg.drive_factor() > ProcessCorner::Tt.drive_factor());
        assert!(ProcessCorner::Tt.drive_factor() > ProcessCorner::Ffg.drive_factor());
        assert!(ProcessCorner::Ffg.drive_factor() > ProcessCorner::Ff.drive_factor());
    }

    #[test]
    fn slow_corners_slow_down_delay() {
        let tech = Technology::planar_28nm();
        let slow = PvtCorner::slow_cold().delay_factor(&tech, VtClass::Svt);
        let fast = PvtCorner::fast_cold().delay_factor(&tech, VtClass::Svt);
        let typ = PvtCorner::typical().delay_factor(&tech, VtClass::Svt);
        assert!((typ - 1.0).abs() < 1e-9, "typical is the reference");
        assert!(slow > 1.2, "slow_cold factor {slow}");
        assert!(fast < 0.95, "fast_cold factor {fast}");
    }

    #[test]
    fn temperature_inversion_shows_in_corner_factors() {
        // At a low signoff voltage, the cold corner is slower than hot —
        // the reason both must be checked (paper Fig 6b).
        let tech = Technology::planar_28nm();
        let base = PvtCorner {
            process: ProcessCorner::Ssg,
            voltage: Volt::new(0.6),
            temperature: Celsius::new(-30.0),
        };
        let hot = PvtCorner {
            temperature: Celsius::new(125.0),
            ..base
        };
        assert!(base.delay_factor(&tech, VtClass::Svt) > hot.delay_factor(&tech, VtClass::Svt));
        // And the relation flips at high voltage.
        let base_hv = PvtCorner {
            voltage: Volt::new(1.15),
            ..base
        };
        let hot_hv = PvtCorner {
            voltage: Volt::new(1.15),
            ..hot
        };
        assert!(
            base_hv.delay_factor(&tech, VtClass::Svt) < hot_hv.delay_factor(&tech, VtClass::Svt)
        );
    }

    #[test]
    fn labels_render() {
        assert_eq!(PvtCorner::typical().label(), "TT_0.90V_25C");
        assert!(PvtCorner::slow_cold().label().contains("SSG"));
    }
}
