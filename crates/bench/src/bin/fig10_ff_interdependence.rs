//! **Fig 10** — interdependent flip-flop timing, measured on the
//! transistor-level master–slave DFF by bisection: (i) c2q vs setup,
//! (ii) c2q vs hold, (iii) the setup-vs-hold contour at the 10% c2q
//! pushout criterion.

use tc_bench::{fmt, print_table};
use tc_device::Technology;
use tc_sim::ff_char::{c2q_vs_hold, c2q_vs_setup, characterize_ff, setup_hold_contour, FfBench};

fn main() {
    let bench = FfBench::paper_default();
    let tech = Technology::planar_28nm();

    let triple = characterize_ff(&bench, &tech, 1.10).expect("characterization");
    println!(
        "conventional characterization (10% pushout): setup {:.1} ps | hold {:.1} ps | c2q {:.1} ps",
        triple.setup.value(),
        triple.hold.value(),
        triple.c2q_nominal.value()
    );

    // Hug the characterized walls: the interesting pushout region of a
    // fast master–slave flop is only a few ps wide.
    let s0 = triple.setup.value();
    let h0 = triple.hold.value();
    let setups: Vec<f64> = vec![
        s0 + 60.0,
        s0 + 20.0,
        s0 + 8.0,
        s0 + 4.0,
        s0 + 2.0,
        s0 + 1.0,
        s0,
        s0 - 1.0,
        s0 - 2.0,
        s0 - 4.0,
    ];
    let pts = c2q_vs_setup(&bench, &tech, &setups).expect("sweep");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                fmt(p.constraint.value(), 1),
                p.c2q
                    .map(|d| fmt(d.value(), 2))
                    .unwrap_or_else(|| "FAIL".into()),
            ]
        })
        .collect();
    print_table(
        "Fig 10(i): c2q vs setup time",
        &["setup (ps)", "c2q (ps)"],
        &rows,
    );

    let holds: Vec<f64> = vec![
        h0 + 60.0,
        h0 + 20.0,
        h0 + 8.0,
        h0 + 4.0,
        h0 + 2.0,
        h0 + 1.0,
        h0,
        h0 - 1.0,
        h0 - 2.0,
        h0 - 4.0,
    ];
    let pts = c2q_vs_hold(&bench, &tech, &holds).expect("sweep");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                fmt(p.constraint.value(), 1),
                p.c2q
                    .map(|d| fmt(d.value(), 2))
                    .unwrap_or_else(|| "FAIL".into()),
            ]
        })
        .collect();
    print_table(
        "Fig 10(ii): c2q vs hold time",
        &["hold (ps)", "c2q (ps)"],
        &rows,
    );

    let contour = setup_hold_contour(
        &bench,
        &tech,
        1.10,
        &[
            s0 + 16.0,
            s0 + 8.0,
            s0 + 4.0,
            s0 + 2.0,
            s0 + 1.0,
            s0,
            s0 - 1.0,
        ],
    )
    .expect("contour");
    let rows: Vec<Vec<String>> = contour
        .iter()
        .map(|(s, h)| vec![fmt(s.value(), 1), fmt(h.value(), 1)])
        .collect();
    print_table(
        "Fig 10(iii): setup vs min hold at 10% pushout (the tradeoff contour)",
        &["setup (ps)", "min hold (ps)"],
        &rows,
    );
    println!(
        "\n(conventional signoff freezes one point of these surfaces; ref [23] recovers the rest)"
    );
}
