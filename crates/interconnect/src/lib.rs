#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-interconnect — BEOL interconnect modeling
//!
//! The paper's §2.2/§3.2 center on the "rise of the BEOL": sub-20 nm
//! wires are highly resistive, multi-patterned, and a first-class source
//! of timing variation. This crate models that stack:
//!
//! * [`beol`] — a 9-metal-layer stack with per-layer R/C, the
//!   conventional BEOL corners (Cw/Cb/Ccw/Ccb/RCw/RCb), and per-layer
//!   *independent* variation parameters (the fact the Tightened BEOL
//!   Corner methodology of Fig 8 exploits).
//! * [`rctree`] — RC trees with Elmore and D2M delay metrics and the
//!   O'Brien–Savarino pi-model reduction used to present an effective
//!   load to the driver's NLDM table.
//! * [`sadp`] — self-aligned double patterning: the four SID patterning
//!   solutions of Fig 5(c) with their CD-variance formulas, line-end
//!   extension and floating-fill capacitance adders, and the bimodal CD
//!   distribution of LELE double patterning.
//! * [`estimate`] — wirelength-based net models (layer assignment by
//!   length, optional non-default rules), producing the `WireModel`
//!   consumed by `tc-sta`.
//!
//! # Examples
//!
//! ```
//! use tc_interconnect::beol::{BeolCorner, BeolStack};
//!
//! let stack = BeolStack::n20();
//! let typ = stack.layer(4).unit_delay(BeolCorner::Typical);
//! let slow = stack.layer(4).unit_delay(BeolCorner::RcWorst);
//! assert!(slow > typ);
//! ```

pub mod beol;
pub mod estimate;
pub mod rctree;
pub mod sadp;
pub mod spef;

pub use beol::{BeolCorner, BeolStack, MetalLayer};
pub use estimate::{NdrClass, WireModel, WireScratch};
pub use rctree::RcTree;
pub use sadp::{PatterningSolution, SadpProcess};
pub use spef::{parse_spef, parse_spef_from, write_spef, NetParasitics};
