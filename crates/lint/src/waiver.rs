//! The waiver/baseline file: known findings that gate CI without
//! blocking it.
//!
//! Format (line-oriented, one record per line, `#` comments allowed):
//!
//! ```text
//! *TCW 1
//! # probe nets are kept unloaded on purpose
//! WAIVE TCL0104 probe_q7 scan probe net, unloaded by design
//! WAIVE TCL0302 * SPEF regenerated nightly; partial annotation is fine
//! ```
//!
//! `WAIVE <code> <subject> <reason…>`: `<code>` must be a catalog rule
//! code, `<subject>` matches a finding's subject exactly (`*` matches
//! every subject of that code), and the rest of the line is the
//! human-readable justification. [`decode_waivers`] and
//! [`render_waivers`] are an emit/reparse fixpoint (`decode ∘ render`
//! is the identity on decoded waivers), and every decode error names
//! the offending line — the same contract the journal and SPEF parsers
//! honor, which is what lets tc-fuzz drive this parser as its seventh
//! target.

use tc_core::error::{Error, Result};

use crate::diag::{rule, Diagnostic};

/// Magic first line of a waiver file.
pub const WAIVER_HEADER: &str = "*TCW 1";

/// One waiver record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// Rule code this waiver applies to (`TCL0104`, …).
    pub code: String,
    /// Exact subject to match, or `*` for every subject of the code.
    pub subject: String,
    /// Why the finding is accepted. May be empty.
    pub reason: String,
}

/// Parses a waiver file.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] naming the offending line for a
/// missing/garbled header, an unknown verb or rule code, or a record
/// missing its subject.
pub fn decode_waivers(text: &str) -> Result<Vec<Waiver>> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            None => return Err(Error::invalid_input("line 1: empty waiver file")),
            Some((i, l)) => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                break (i + 1, t);
            }
        }
    };
    if header.1 != WAIVER_HEADER {
        return Err(Error::invalid_input(format!(
            "line {}: expected `{WAIVER_HEADER}` header, got: {}",
            header.0, header.1
        )));
    }

    let mut waivers = Vec::new();
    for (i, l) in lines {
        let lineno = i + 1;
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let rest = t.strip_prefix("WAIVE").ok_or_else(|| {
            Error::invalid_input(format!("line {lineno}: expected WAIVE record, got: {t}"))
        })?;
        if !rest.starts_with(char::is_whitespace) {
            return Err(Error::invalid_input(format!(
                "line {lineno}: expected WAIVE record, got: {t}"
            )));
        }
        let rest = rest.trim_start();
        let (code, rest) = rest.split_once(char::is_whitespace).ok_or_else(|| {
            Error::invalid_input(format!("line {lineno}: WAIVE missing subject: {t}"))
        })?;
        if rule(code).is_none() {
            return Err(Error::invalid_input(format!(
                "line {lineno}: unknown rule code {code}"
            )));
        }
        let rest = rest.trim_start();
        let (subject, reason) = match rest.split_once(char::is_whitespace) {
            Some((s, r)) => (s, r.trim()),
            None => (rest, ""),
        };
        if subject.is_empty() {
            return Err(Error::invalid_input(format!(
                "line {lineno}: WAIVE missing subject: {t}"
            )));
        }
        waivers.push(Waiver {
            code: code.to_string(),
            subject: subject.to_string(),
            reason: reason.to_string(),
        });
    }
    Ok(waivers)
}

/// Renders waivers in canonical form: header, then one `WAIVE` line per
/// record. `decode_waivers(render_waivers(ws)) == ws`.
pub fn render_waivers(waivers: &[Waiver]) -> String {
    let mut out = String::from(WAIVER_HEADER);
    out.push('\n');
    for w in waivers {
        out.push_str("WAIVE ");
        out.push_str(&w.code);
        out.push(' ');
        out.push_str(&w.subject);
        if !w.reason.is_empty() {
            out.push(' ');
            out.push_str(&w.reason);
        }
        out.push('\n');
    }
    out
}

/// Findings split into the ones that still gate and the ones a waiver
/// accepted.
#[derive(Clone, Debug, Default)]
pub struct WaiverOutcome {
    /// Findings no waiver matched — these decide the exit code.
    pub active: Vec<Diagnostic>,
    /// Findings accepted by a waiver, with the index of the matching
    /// record.
    pub waived: Vec<(Diagnostic, usize)>,
    /// Indices of waiver records that matched nothing (stale baseline
    /// entries worth pruning; informational, never gating).
    pub unused: Vec<usize>,
}

/// Applies waivers to findings, preserving finding order. The first
/// matching waiver wins; a waiver matches when its code equals the
/// finding's code and its subject is `*` or equals the finding's
/// subject.
pub fn apply_waivers(diags: Vec<Diagnostic>, waivers: &[Waiver]) -> WaiverOutcome {
    let mut out = WaiverOutcome::default();
    let mut used = vec![false; waivers.len()];
    for d in diags {
        match waivers
            .iter()
            .position(|w| w.code == d.code && (w.subject == "*" || w.subject == d.subject))
        {
            Some(i) => {
                used[i] = true;
                out.waived.push((d, i));
            }
            None => out.active.push(d),
        }
    }
    out.unused = (0..waivers.len()).filter(|&i| !used[i]).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::finding;

    fn sample() -> Vec<Waiver> {
        vec![
            Waiver {
                code: "TCL0104".into(),
                subject: "probe_q7".into(),
                reason: "scan probe net, unloaded by design".into(),
            },
            Waiver {
                code: "TCL0302".into(),
                subject: "*".into(),
                reason: String::new(),
            },
        ]
    }

    #[test]
    fn render_decode_is_identity() {
        let ws = sample();
        let text = render_waivers(&ws);
        assert_eq!(decode_waivers(&text).unwrap(), ws);
        // And a second pass is a fixpoint.
        let again = render_waivers(&decode_waivers(&text).unwrap());
        assert_eq!(again, text);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# baseline\n\n*TCW 1\n# dated 2026-08\nWAIVE TCL0104 x why\n";
        let ws = decode_waivers(text).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].subject, "x");
    }

    #[test]
    fn errors_name_the_line() {
        for (text, want) in [
            ("", "line 1"),
            ("*TCJ 1\n", "line 1"),
            ("*TCW 1\nNOPE x\n", "line 2"),
            ("*TCW 1\nWAIVE TCL9999 x y\n", "line 2"),
            ("*TCW 1\nWAIVE TCL0104\n", "line 2"),
        ] {
            let err = decode_waivers(text).unwrap_err().to_string();
            assert!(err.contains(want), "{text:?} → {err}");
        }
    }

    #[test]
    fn waivers_split_findings_and_track_staleness() {
        let diags = vec![
            finding("TCL0104", "probe_q7", "no sinks", "netlist", None),
            finding("TCL0104", "other", "no sinks", "netlist", None),
        ];
        let ws = sample();
        let out = apply_waivers(diags, &ws);
        assert_eq!(out.active.len(), 1);
        assert_eq!(out.active[0].subject, "other");
        assert_eq!(out.waived.len(), 1);
        assert_eq!(out.waived[0].1, 0);
        // The TCL0302 wildcard matched nothing.
        assert_eq!(out.unused, vec![1]);
    }
}
