//! Summary statistics and histograms for Monte Carlo post-processing.
//!
//! The paper's statistical content — the asymmetric path-delay
//! distribution of Figure 7 (separate late/early sigmas), the 3σ delay
//! behind the corner-pessimism metric of Figure 8, and the accuracy
//! comparison of AOCV/POCV/LVF against Monte Carlo — all reduce to
//! moments and quantiles of sample sets, which this module computes.
//!
//! # Examples
//!
//! ```
//! use tc_core::stats::Summary;
//!
//! let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 4.0);
//! ```

/// Moments and extrema of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sigma: f64,
    /// Sample skewness (Fisher–Pearson, bias-uncorrected).
    pub skewness: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes moments of a sample set. An empty input yields the
    /// all-zero summary.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            let d = x - mean;
            m2 += d * d;
            m3 += d * d * d;
            min = min.min(x);
            max = max.max(x);
        }
        let var = if n > 1 { m2 / (n as f64 - 1.0) } else { 0.0 };
        let sigma = var.sqrt();
        let pop_sigma = (m2 / n as f64).sqrt();
        let skewness = if pop_sigma > 0.0 {
            (m3 / n as f64) / pop_sigma.powi(3)
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            sigma,
            skewness,
            min,
            max,
        }
    }

    /// The classic "N-sigma" point `mean + k·sigma`.
    pub fn mean_plus_sigmas(&self, k: f64) -> f64 {
        self.mean + k * self.sigma
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample set by linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let t = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] + t * (sorted[i + 1] - sorted[i])
    } else {
        sorted[i]
    }
}

/// Separate late/early deviations of an asymmetric distribution, the
/// quantity the Liberty Variation Format carries per arc (paper §3.1,
/// Figure 7): the late sigma is measured on the right tail and the early
/// sigma on the left tail, each as (quantile − median)/z.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TailSigmas {
    /// Median of the samples.
    pub median: f64,
    /// Effective sigma of the late (right) tail.
    pub late: f64,
    /// Effective sigma of the early (left) tail.
    pub early: f64,
}

/// Estimates separate late/early sigmas from the 0.13% / 99.87% (±3σ)
/// quantiles of a sample set.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn tail_sigmas(xs: &[f64]) -> TailSigmas {
    let median = quantile(xs, 0.5);
    let hi = quantile(xs, 0.99865); // +3σ point of a Gaussian
    let lo = quantile(xs, 0.00135); // −3σ point
    TailSigmas {
        median,
        late: (hi - median) / 3.0,
        early: (median - lo) / 3.0,
    }
}

/// A fixed-bin histogram over a closed range.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    outliers: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi, "bad histogram spec");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds a sample; out-of-range samples count as outliers.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x > self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Samples that fell outside `[lo, hi]`.
    pub fn outliers(&self) -> usize {
        self.outliers
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Renders a compact ASCII bar chart, one bin per line — used by the
    /// figure-regeneration binaries.
    pub fn render(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * width / peak);
            out.push_str(&format!("{:>10.3} |{bar} {c}\n", self.bin_center(i)));
        }
        out
    }
}

/// Pearson correlation coefficient of two equal-length sample sets.
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 samples are given.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal lengths");
    assert!(xs.len() >= 2, "correlation needs >= 2 samples");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Root-sum-square of a slice — the accumulation rule POCV/LVF use to
/// combine independent per-stage sigmas along a path (paper §3.1).
pub fn rss(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Standard normal CDF Φ(z), via the Abramowitz–Stegun erf
/// approximation (|error| < 1.5e-7) — used by parametric-yield models.
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population sigma is 2.0; sample sigma = 2.138...
        assert!((s.sigma - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.skewness > 0.0); // right-tailed set
    }

    #[test]
    fn summary_handles_empty_and_singleton() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.sigma, 0.0);
        assert_eq!(s.skewness, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn tail_sigmas_detect_asymmetry() {
        // Right-skewed: late sigma should exceed early sigma.
        let mut r = crate::rng::Rng::seed_from(11);
        let xs: Vec<f64> = (0..60_000).map(|_| r.skew_normal(5.0)).collect();
        let t = tail_sigmas(&xs);
        assert!(t.late > t.early * 1.1, "late {} early {}", t.late, t.early);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.6, 9.9, 11.0, -1.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.outliers(), 2);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!(h.render(10).lines().count() == 5);
    }

    #[test]
    fn correlation_of_linear_data_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rss_accumulates() {
        assert!((rss(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(rss(&[]), 0.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586553).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.9986501).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999999);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use crate::rng::Rng;

    fn random_vec(rng: &mut Rng, lo: f64, hi: f64, max_len: usize) -> Vec<f64> {
        let n = 1 + rng.below(max_len - 1);
        (0..n).map(|_| rng.uniform_in(lo, hi)).collect()
    }

    #[test]
    fn quantile_is_bounded_and_monotone() {
        let mut rng = Rng::seed_from(0x5_7a71);
        for _ in 0..128 {
            let mut xs = random_vec(&mut rng, -1e6, 1e6, 60);
            xs.iter_mut().for_each(|x| *x = x.trunc());
            let (q1, q2) = (rng.uniform(), rng.uniform());
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let v_lo = quantile(&xs, lo);
            let v_hi = quantile(&xs, hi);
            assert!(v_lo <= v_hi + 1e-9);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
        }
    }

    #[test]
    fn summary_mean_is_within_extrema() {
        let mut rng = Rng::seed_from(0x5_7a72);
        for _ in 0..128 {
            let xs = random_vec(&mut rng, -1e3, 1e3, 50);
            let s = Summary::of(&xs);
            assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
            assert!(s.sigma >= 0.0);
        }
    }

    #[test]
    fn rss_dominates_components() {
        let mut rng = Rng::seed_from(0x5_7a73);
        for _ in 0..128 {
            let xs = random_vec(&mut rng, 0.0, 1e3, 20);
            let r = rss(&xs);
            let max = xs.iter().cloned().fold(0.0f64, f64::max);
            let sum: f64 = xs.iter().sum();
            assert!(r >= max - 1e-9, "rss at least the largest term");
            assert!(r <= sum + 1e-9, "rss at most the linear sum");
        }
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric() {
        let mut rng = Rng::seed_from(0x5_7a74);
        for _ in 0..256 {
            let z = rng.uniform_in(-6.0, 6.0);
            assert!(normal_cdf(z) >= 0.0 && normal_cdf(z) <= 1.0);
            assert!(normal_cdf(z + 0.1) >= normal_cdf(z));
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        }
    }
}
