//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`span`] and closed when the returned guard
//! drops. Nesting is tracked per thread: a span opened while another is
//! live on the same thread aggregates under the parent's path, joined
//! with `/` — e.g. `closure.iteration/sta.gba`. Timing uses
//! [`Instant`], so it is monotonic and immune to wall-clock steps.

use std::cell::RefCell;
use std::time::Instant;

use crate::alloc::{self, HeapMark};
use crate::registry::{is_enabled, record_span, reset_epoch};
use crate::trace;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    path: String,
    start: Instant,
    /// [`reset_epoch`] at open time: a guard that outlives a
    /// [`crate::reset`] must not record a stale duration into the
    /// fresh registry.
    epoch: u64,
    /// Whether a trace Begin event was emitted (so the End stays
    /// paired even if tracing is toggled mid-span).
    traced: bool,
    /// Heap position at open, when memory counting was enabled — the
    /// span's net bytes and peak growth are recorded on close, next to
    /// its duration.
    heap: Option<HeapMark>,
}

/// RAII guard for an open span; records elapsed time on drop.
///
/// While instrumentation is disabled this is an empty struct and the
/// drop is a no-op.
#[must_use = "a span measures the scope of its guard — bind it with `let _span = ...`"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The full `/`-joined path this guard records under, if live.
    pub fn path(&self) -> Option<&str> {
        self.0.as_ref().map(|a| a.path.as_str())
    }
}

/// Opens a span named `name` under the current thread's innermost open
/// span (if any).
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    let traced = trace::span_begin(name);
    let heap = alloc::memory_enabled().then(|| {
        if traced {
            trace::gauge("mem.live_bytes", alloc::live_bytes());
        }
        alloc::heap_mark()
    });
    SpanGuard(Some(ActiveSpan {
        path,
        start: Instant::now(),
        epoch: reset_epoch(),
        traced,
        heap,
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let elapsed = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Guards normally drop LIFO; tolerate out-of-order drops
                // (e.g. guards stored in structs) by removing by value.
                if stack.last() == Some(&active.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &active.path) {
                    stack.remove(pos);
                }
            });
            let heap = active.heap.map(|mark| mark.delta());
            if active.traced {
                let name = active.path.rsplit('/').next().unwrap_or(&active.path);
                trace::span_end(name);
                if active.heap.is_some() {
                    trace::gauge("mem.live_bytes", alloc::live_bytes());
                }
            }
            // A reset() between open and close means this duration
            // belongs to the wiped registry, not the fresh one.
            if active.epoch == reset_epoch() {
                record_span(&active.path, elapsed, heap);
            }
        }
    }
}

/// The current thread's innermost open span path, if any.
///
/// Worker pools capture this on the submitting thread and install it on
/// each worker via [`span_parent`], so spans opened on workers keep
/// nesting under the caller's span tree instead of starting a fresh
/// root per thread.
pub fn current_span_path() -> Option<String> {
    if !is_enabled() {
        return None;
    }
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

/// RAII guard installing an ambient parent span path on this thread.
///
/// Unlike [`SpanGuard`] this records nothing on drop — it only provides
/// the nesting context (the submitting thread's span records the wall
/// clock; workers record their own child spans under it).
#[must_use = "the parent context lasts for the scope of its guard"]
pub struct SpanParentGuard(Option<String>);

/// Installs `path` (a full `/`-joined span path, typically from
/// [`current_span_path`] on another thread) as this thread's ambient
/// parent span until the returned guard drops. A `None` path — or
/// disabled instrumentation — makes this a no-op.
pub fn span_parent(path: Option<&str>) -> SpanParentGuard {
    match path {
        Some(p) if is_enabled() => {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(p.to_string()));
            SpanParentGuard(Some(p.to_string()))
        }
        _ => SpanParentGuard(None),
    }
}

impl Drop for SpanParentGuard {
    fn drop(&mut self) {
        if let Some(path) = self.0.take() {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|p| p == &path) {
                    stack.remove(pos);
                }
            });
        }
    }
}
