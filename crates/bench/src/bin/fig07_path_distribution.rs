//! **Fig 7** — asymmetry of the Monte Carlo path-delay distribution:
//! the "setup long tail" that motivates separate late/early sigmas in
//! LVF timing models (adapted from Rithe et al., ref \[27\]).

use tc_bench::{fmt, print_table};
use tc_core::stats::{tail_sigmas, Histogram, Summary};
use tc_variation::mc::PathModel;

fn main() {
    // A 12-stage path with skewed local variation (low-voltage regime).
    let path = PathModel::uniform(12, 20.0, 0.06, 4.0);
    let samples = path.monte_carlo(100_000, 2015);
    let s = Summary::of(&samples);
    let t = tail_sigmas(&samples);

    println!("path: 12 stages × 20 ps nominal | 100k Monte Carlo samples");
    println!(
        "mean {:.2} ps | sigma {:.2} ps | skewness {:.3} (positive = late tail)",
        s.mean, s.sigma, s.skewness
    );
    let rows = vec![
        vec!["median (zero-sigma delay)".into(), fmt(t.median, 2)],
        vec!["late (setup) sigma".into(), fmt(t.late, 2)],
        vec!["early (hold) sigma".into(), fmt(t.early, 2)],
        vec!["late/early ratio".into(), fmt(t.late / t.early, 3)],
    ];
    print_table(
        "Fig 7: split late/early sigmas (the LVF representation)",
        &["quantity", "ps"],
        &rows,
    );

    let lo = s.mean - 4.5 * s.sigma;
    let hi = s.mean + 6.5 * s.sigma;
    let mut h = Histogram::new(lo, hi, 26);
    for &x in &samples {
        h.add(x);
    }
    println!("\npath-delay histogram (note the long right tail):");
    print!("{}", h.render(60));
}
