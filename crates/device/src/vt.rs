//! Threshold-voltage classes.
//!
//! Modern libraries ship each logic cell in several threshold flavours;
//! swapping a cell's Vt is the *first* fix a physical-design engineer
//! reaches for during timing closure (paper Fig 1, ref \[30\]) because it
//! changes neither footprint nor routing — until minimum-implant-area
//! rules make it placement-dependent (paper §2.4).

use std::fmt;

/// A threshold-voltage class, ordered fastest/leakiest first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VtClass {
    /// Ultra-low threshold: fastest, leakiest.
    Ulvt,
    /// Low threshold.
    Lvt,
    /// Standard threshold (the default flavour).
    #[default]
    Svt,
    /// High threshold: slowest, lowest leakage.
    Hvt,
}

impl VtClass {
    /// All classes, fastest first.
    pub const ALL: [VtClass; 4] = [VtClass::Ulvt, VtClass::Lvt, VtClass::Svt, VtClass::Hvt];

    /// Threshold-voltage offset in volts relative to the SVT device.
    /// Lower Vt ⇒ more gate overdrive ⇒ faster switching.
    pub fn vt_offset(self) -> f64 {
        match self {
            VtClass::Ulvt => -0.10,
            VtClass::Lvt => -0.05,
            VtClass::Svt => 0.0,
            VtClass::Hvt => 0.06,
        }
    }

    /// Leakage multiplier relative to SVT. Subthreshold current scales as
    /// `exp(−ΔVt / (n·vT))`; with n·vT ≈ 36 mV at room temperature a
    /// 50 mV Vt step is roughly a 4× leakage step.
    pub fn leakage_factor(self) -> f64 {
        (-self.vt_offset() / 0.036).exp()
    }

    /// The next-slower (lower-leakage) class, if any. `Vt`-swap power
    /// recovery walks down this ladder.
    pub fn slower(self) -> Option<VtClass> {
        match self {
            VtClass::Ulvt => Some(VtClass::Lvt),
            VtClass::Lvt => Some(VtClass::Svt),
            VtClass::Svt => Some(VtClass::Hvt),
            VtClass::Hvt => None,
        }
    }

    /// The next-faster (higher-leakage) class, if any. Timing fixes walk
    /// up this ladder (paper Fig 1 step "Vt swap").
    pub fn faster(self) -> Option<VtClass> {
        match self {
            VtClass::Ulvt => None,
            VtClass::Lvt => Some(VtClass::Ulvt),
            VtClass::Svt => Some(VtClass::Lvt),
            VtClass::Hvt => Some(VtClass::Svt),
        }
    }

    /// Short library-style suffix ("ulvt", "lvt", …).
    pub fn suffix(self) -> &'static str {
        match self {
            VtClass::Ulvt => "ulvt",
            VtClass::Lvt => "lvt",
            VtClass::Svt => "svt",
            VtClass::Hvt => "hvt",
        }
    }
}

impl fmt::Display for VtClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_ordering_is_monotone_in_vt() {
        let leak: Vec<f64> = VtClass::ALL.iter().map(|v| v.leakage_factor()).collect();
        for w in leak.windows(2) {
            assert!(w[0] > w[1], "leakage must fall as Vt rises: {leak:?}");
        }
        // SVT is the reference.
        assert!((VtClass::Svt.leakage_factor() - 1.0).abs() < 1e-12);
        // A 50–60 mV step is a several-x leakage step.
        assert!(VtClass::Ulvt.leakage_factor() > 10.0);
        assert!(VtClass::Hvt.leakage_factor() < 0.25);
    }

    #[test]
    fn ladder_walks_both_ways() {
        assert_eq!(VtClass::Svt.faster(), Some(VtClass::Lvt));
        assert_eq!(VtClass::Svt.slower(), Some(VtClass::Hvt));
        assert_eq!(VtClass::Ulvt.faster(), None);
        assert_eq!(VtClass::Hvt.slower(), None);
        // faster then slower round-trips in the interior.
        assert_eq!(VtClass::Lvt.faster().unwrap().slower(), Some(VtClass::Lvt));
    }

    #[test]
    fn ordering_fastest_first() {
        assert!(VtClass::Ulvt < VtClass::Hvt);
        let mut v = vec![VtClass::Hvt, VtClass::Ulvt, VtClass::Svt];
        v.sort();
        assert_eq!(v, vec![VtClass::Ulvt, VtClass::Svt, VtClass::Hvt]);
    }

    #[test]
    fn display_suffixes() {
        assert_eq!(VtClass::Ulvt.to_string(), "ulvt");
        assert_eq!(VtClass::Hvt.to_string(), "hvt");
    }
}
