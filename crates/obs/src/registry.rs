//! The global metric registry: a process-wide, thread-safe store for
//! span statistics, counters, and histograms.
//!
//! Everything here is std-only. Spans aggregate by *path* (the
//! `/`-joined chain of enclosing span names), so memory stays bounded
//! no matter how many times a hot span fires.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::alloc::{self, HeapDelta};
use crate::export::{HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::metrics::{Counter, HistData, Histogram};

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Summed net heap bytes across occurrences (memory counting on).
    pub net_bytes: i64,
    /// Largest single-occurrence peak growth (memory counting on).
    pub peak_bytes: u64,
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<Mutex<HistData>>>,
}

/// The process-wide registry. Use the free functions in this module (or
/// the crate root) rather than holding one directly.
pub struct Registry {
    enabled: AtomicBool,
    /// Bumped by [`reset`]: span guards opened before a reset refuse to
    /// record into the registry that replaced theirs.
    epoch: AtomicU64,
    inner: Mutex<Inner>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
        inner: Mutex::new(Inner::default()),
    })
}

/// The current reset generation (see [`reset`]).
#[inline]
pub(crate) fn reset_epoch() -> u64 {
    global().epoch.load(Ordering::Relaxed)
}

/// Turns instrumentation on. Until this is called every span is a no-op
/// guard and every counter add is a single relaxed load plus an untaken
/// branch.
pub fn enable() {
    global().enabled.store(true, Ordering::Relaxed);
}

/// Turns instrumentation off. Already-issued guards still record.
pub fn disable() {
    global().enabled.store(false, Ordering::Relaxed);
}

/// Whether instrumentation is currently on.
#[inline]
pub fn is_enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Records one completed span occurrence under `path`, with its heap
/// delta when memory counting was on at span open.
pub(crate) fn record_span(path: &str, elapsed: Duration, heap: Option<HeapDelta>) {
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let mut inner = global().inner.lock().expect("obs registry poisoned");
    let stat = inner.spans.entry(path.to_string()).or_default();
    if stat.count == 0 {
        stat.min_ns = ns;
        stat.max_ns = ns;
    } else {
        stat.min_ns = stat.min_ns.min(ns);
        stat.max_ns = stat.max_ns.max(ns);
    }
    stat.count += 1;
    stat.total_ns = stat.total_ns.saturating_add(ns);
    if let Some(h) = heap {
        stat.net_bytes = stat.net_bytes.saturating_add(h.net_bytes);
        stat.peak_bytes = stat.peak_bytes.max(h.peak_bytes);
    }
}

/// Fetches (registering on first use) the counter named `name`.
///
/// The returned handle is a cheap `Arc` clone; hot loops should fetch it
/// once and call [`Counter::add`] repeatedly rather than re-looking-up.
pub fn counter(name: &str) -> Counter {
    let mut inner = global().inner.lock().expect("obs registry poisoned");
    let cell = inner
        .counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .clone();
    Counter::new(name, cell)
}

/// Fetches (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut inner = global().inner.lock().expect("obs registry poisoned");
    let cell = inner
        .hists
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(Mutex::new(HistData::default())))
        .clone();
    Histogram::new(cell)
}

/// Clears all span statistics and histograms, zeroes every counter, and
/// drains the flight recorder's trace rings. Existing
/// [`Counter`]/[`Histogram`] handles remain valid. A [`crate::SpanGuard`]
/// open across the reset stays harmless: it keeps the thread-local path
/// stack consistent but records nothing into the fresh registry.
pub fn reset() {
    global().epoch.fetch_add(1, Ordering::Relaxed);
    let mut inner = global().inner.lock().expect("obs registry poisoned");
    inner.spans.clear();
    for c in inner.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for h in inner.hists.values() {
        *h.lock().expect("obs histogram poisoned") = HistData::default();
    }
    drop(inner);
    crate::trace::clear_trace();
}

/// Takes a consistent snapshot of everything recorded so far.
pub fn snapshot() -> Snapshot {
    let inner = global().inner.lock().expect("obs registry poisoned");
    let spans = inner
        .spans
        .iter()
        .map(|(path, s)| SpanSnapshot {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
            net_bytes: s.net_bytes,
            peak_bytes: s.peak_bytes,
        })
        .collect();
    let mut counters: BTreeMap<String, u64> = inner
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    // Memory telemetry joins the counter namespace while counting is
    // on: cumulative allocator totals plus live/peak/VmHWM gauges
    // sampled at snapshot time (see the crate-root taxonomy).
    if alloc::memory_enabled() {
        let m = alloc::memory_stats();
        counters.insert("mem.allocs".to_string(), m.allocs);
        counters.insert("mem.frees".to_string(), m.frees);
        counters.insert("mem.live_bytes".to_string(), m.live_bytes);
        counters.insert("mem.peak_heap_bytes".to_string(), m.peak_bytes);
        if let Some(hwm) = alloc::vm_hwm_bytes() {
            counters.insert("mem.vm_hwm_bytes".to_string(), hwm);
        }
    }
    let counters = counters.into_iter().collect();
    let histograms = inner
        .hists
        .iter()
        .map(|(k, v)| {
            let d = v.lock().expect("obs histogram poisoned");
            HistogramSnapshot::from_data(k.clone(), &d)
        })
        .collect();
    Snapshot {
        spans,
        counters,
        histograms,
    }
}
