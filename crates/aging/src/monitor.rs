//! Design-dependent ring-oscillator (DDRO) monitors — ref \[3\].
//!
//! AVS controllers do not see the real critical path; they see on-chip
//! monitors. A plain ring oscillator tracks an SVT inverter chain, but a
//! real critical path mixes Vt classes and wire, so the monitor-to-path
//! gap across (V, ΔVt) sets the AVS guardband. Design-dependent ROs
//! blend device flavours to shrink that gap.

use tc_core::units::{Celsius, Volt};
use tc_device::{MosDevice, MosKind, Technology, VtClass};

/// A ring-oscillator monitor: a mix of stage flavours.
#[derive(Clone, Debug, PartialEq)]
pub struct RingOscMonitor {
    /// `(vt, weight)` of each stage flavour; weights sum to 1.
    pub mix: Vec<(VtClass, f64)>,
    /// Wire fraction of stage delay (monitors are compact: usually ~0).
    pub wire_fraction: f64,
}

impl RingOscMonitor {
    /// A plain SVT ring oscillator.
    pub fn plain() -> Self {
        RingOscMonitor {
            mix: vec![(VtClass::Svt, 1.0)],
            wire_fraction: 0.0,
        }
    }

    /// A design-dependent RO matched to a path profile.
    pub fn matched(mix: Vec<(VtClass, f64)>, wire_fraction: f64) -> Self {
        RingOscMonitor { mix, wire_fraction }
    }

    /// Delay factor at (v, dvt) relative to (v_ref, fresh): the quantity
    /// the AVS controller reads.
    pub fn delay_factor(
        &self,
        tech: &Technology,
        v: Volt,
        v_ref: Volt,
        dvt: f64,
        temp: Celsius,
    ) -> f64 {
        let gate = |vt: VtClass, vv: Volt, shift: f64| {
            let dev = MosDevice::new(MosKind::Nmos, vt, 1.0).aged(shift);
            vv.value() / dev.idsat(tech, vv, temp)
        };
        let mut now = 0.0;
        let mut reference = 0.0;
        for &(vt, w) in &self.mix {
            now += w * gate(vt, v, dvt);
            reference += w * gate(vt, v_ref, 0.0);
        }
        // Wire delay does not scale with voltage or aging: blend the
        // gate-delay ratio with a constant wire share.
        (1.0 - self.wire_fraction) * now / reference.max(1e-12) + self.wire_fraction
    }

    /// Worst tracking error vs a target path profile over a voltage
    /// sweep: the guardband an AVS system must carry.
    pub fn tracking_error(
        &self,
        target: &RingOscMonitor,
        tech: &Technology,
        v_ref: Volt,
        dvt: f64,
        temp: Celsius,
        v_sweep: &[f64],
    ) -> f64 {
        v_sweep
            .iter()
            .map(|&v| {
                let m = self.delay_factor(tech, Volt::new(v), v_ref, dvt, temp);
                let p = target.delay_factor(tech, Volt::new(v), v_ref, dvt, temp);
                ((m - p) / p).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::planar_28nm()
    }

    #[test]
    fn monitor_tracks_voltage() {
        let m = RingOscMonitor::plain();
        let t = tech();
        let ref_v = Volt::new(0.9);
        let at_nom = m.delay_factor(&t, ref_v, ref_v, 0.0, Celsius::new(105.0));
        assert!((at_nom - 1.0).abs() < 1e-9);
        let lower = m.delay_factor(&t, Volt::new(0.8), ref_v, 0.0, Celsius::new(105.0));
        assert!(lower > 1.0);
    }

    #[test]
    fn matched_monitor_tracks_hvt_path_better_than_plain() {
        // A critical path dominated by HVT devices is *more* voltage-
        // sensitive than an SVT ring oscillator; a matched DDRO closes
        // that gap.
        let t = tech();
        let path = RingOscMonitor::matched(vec![(VtClass::Hvt, 0.7), (VtClass::Svt, 0.3)], 0.0);
        let plain = RingOscMonitor::plain();
        let matched = RingOscMonitor::matched(vec![(VtClass::Hvt, 0.6), (VtClass::Svt, 0.4)], 0.0);
        let sweep: Vec<f64> = (0..8).map(|i| 0.72 + 0.04 * i as f64).collect();
        let e_plain =
            plain.tracking_error(&path, &t, Volt::new(0.9), 0.02, Celsius::new(105.0), &sweep);
        let e_matched =
            matched.tracking_error(&path, &t, Volt::new(0.9), 0.02, Celsius::new(105.0), &sweep);
        assert!(
            e_matched < e_plain,
            "matched {e_matched} must beat plain {e_plain}"
        );
        assert!(e_plain > 0.005, "plain RO must show a real gap");
    }
}
