//! Levelization: topological ordering of the combinational graph with
//! flops as sequential boundaries.
//!
//! STA propagates arrivals in level order; the AOCV derate model needs
//! per-node logic depth; generators use depth statistics for their
//! profiles. Flop outputs (Q) are treated as *start points* and flop
//! inputs (D) as *end points*, so registered feedback does not create
//! combinational cycles.

use tc_core::error::{Error, Result};
use tc_core::ids::CellId;
use tc_liberty::{CellKind, Library};

use crate::graph::Netlist;

/// The result of levelizing a netlist.
#[derive(Clone, Debug)]
pub struct Levelization {
    /// Cells in a valid combinational evaluation order (flops first).
    pub order: Vec<CellId>,
    /// Logic depth of each cell's output (flop outputs and PIs = 0).
    pub depth: Vec<usize>,
}

impl Levelization {
    /// Maximum combinational depth in the design.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Levelizes a netlist.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] if the combinational graph contains a
/// cycle (unregistered feedback). The message names the cells on each
/// offending cycle — extracted with the same SCC walk the tc-lint cycle
/// rule uses — so the failure is actionable instead of a bare count.
pub fn levelize(nl: &Netlist, lib: &Library) -> Result<Levelization> {
    let n = nl.cell_count();
    let mut indeg = vec![0usize; n];
    let mut is_flop = vec![false; n];
    for (i, cell) in nl.cells().enumerate() {
        if lib.cell(cell.master).kind == CellKind::Flop {
            is_flop[i] = true;
            continue; // flops have no combinational fan-in dependency
        }
        for &input in cell.inputs {
            if let Some(drv) = nl.net(input).driver {
                if !lib_is_flop(nl, lib, drv) {
                    indeg[i] += 1;
                }
            }
        }
    }

    let mut order: Vec<CellId> = Vec::with_capacity(n);
    let mut depth = vec![0usize; n];
    let mut queue: Vec<CellId> = Vec::new();
    // Flops are seeded ahead of every combinational cell so that a cell's
    // position in `order` is strictly greater than that of *all* cells
    // driving its inputs — including flop drivers. Incremental timing
    // relies on this total-order invariant to evaluate dirty cells in a
    // single monotone worklist sweep.
    for (i, &flop) in is_flop.iter().enumerate() {
        if flop {
            queue.push(CellId::new(i));
        }
    }
    for i in 0..n {
        if indeg[i] == 0 && !is_flop[i] {
            queue.push(CellId::new(i));
            // A gate whose fan-in is all PIs/flops sits one level in;
            // flops themselves are level-0 start points.
            depth[i] = 1;
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        order.push(c);
        if is_flop[c.index()] {
            // Flop-driven pins were never counted in `indeg`.
            continue;
        }
        let out = nl.cell(c).output;
        for sink in nl.net(out).sinks {
            let s = sink.cell;
            if is_flop[s.index()] {
                continue;
            }
            depth[s.index()] = depth[s.index()].max(depth[c.index()] + 1);
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        // Only pay for SCC extraction on the failure path: the clean
        // path stays a single Kahn sweep.
        let sccs = crate::scc::combinational_sccs(nl, lib);
        let mut msg = format!(
            "combinational loop: {} of {} cells unplaced in topological order",
            n - order.len(),
            n
        );
        for comp in sccs.iter().take(3) {
            msg.push_str("; cycle through ");
            msg.push_str(&crate::scc::describe_scc(nl, comp));
        }
        if sccs.len() > 3 {
            msg.push_str(&format!("; and {} more cycle(s)", sccs.len() - 3));
        }
        return Err(Error::invalid_input(msg));
    }
    Ok(Levelization { order, depth })
}

fn lib_is_flop(nl: &Netlist, lib: &Library, cell: CellId) -> bool {
    lib.cell(nl.cell(cell).master).kind == CellKind::Flop
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, Library, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn chain_depths_count_up() {
        let lib = lib();
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let mut net = a;
        let mut cells = Vec::new();
        for i in 0..5 {
            let (c, out) = nl.add_cell(format!("i{i}"), &lib, inv, &[net]).unwrap();
            cells.push(c);
            net = out;
        }
        let lv = levelize(&nl, &lib).unwrap();
        assert_eq!(lv.max_depth(), 5);
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(lv.depth[c.index()], i + 1);
        }
    }

    #[test]
    fn flops_break_cycles() {
        // Registered feedback: flop.Q → INV → flop.D must levelize fine.
        let lib = lib();
        let mut nl = Netlist::new("loop");
        let clk = nl.add_input("clk");
        let dff = lib.variant("DFF", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        // Build flop with a placeholder D, then rewire through the INV.
        let d_tmp = nl.add_input("d_tmp");
        let (_ff, q) = nl.add_cell("ff", &lib, dff, &[d_tmp, clk]).unwrap();
        let (_g, _gout) = nl.add_cell("g", &lib, inv, &[q]).unwrap();
        let lv = levelize(&nl, &lib).unwrap();
        assert_eq!(lv.order.len(), 2);
        // Flop output is depth 0; the inverter is depth 1.
        let g = nl.cell_named("g").unwrap();
        assert_eq!(lv.depth[g.index()], 1);
    }

    #[test]
    fn order_places_every_comb_cell_after_all_its_drivers() {
        // The invariant incremental timing builds on: a combinational
        // cell's order position strictly exceeds that of every cell
        // driving one of its inputs (flop or comb).
        let lib = lib();
        let nl = crate::gen::generate(&lib, crate::gen::BenchProfile::tiny(), 7).unwrap();
        let lv = levelize(&nl, &lib).unwrap();
        let mut pos = vec![0usize; nl.cell_count()];
        for (p, &c) in lv.order.iter().enumerate() {
            pos[c.index()] = p;
        }
        for (i, cell) in nl.cells().enumerate() {
            if lib.cell(cell.master).kind == CellKind::Flop {
                continue;
            }
            for &input in cell.inputs {
                if let Some(drv) = nl.net(input).driver {
                    assert!(
                        pos[drv.index()] < pos[i],
                        "driver {} not before sink {}",
                        drv.index(),
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn detects_combinational_loop() {
        use crate::graph::PinRef;
        let lib = lib();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let tmp = nl.add_input("tmp");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let (u1, n1) = nl.add_cell("u1", &lib, nand, &[a, tmp]).unwrap();
        let (_u2, n2) = nl.add_cell("u2", &lib, nand, &[n1, n1]).unwrap();
        // Close the loop: u1 input 1 ← u2 output.
        nl.rewire_input(PinRef { cell: u1, pin: 1 }, n2);
        nl.validate(&lib).unwrap();
        let err = levelize(&nl, &lib).unwrap_err().to_string();
        // The failure is actionable: it names the cells on the cycle.
        assert!(err.contains("u1") && err.contains("u2"), "{err}");
    }
}
