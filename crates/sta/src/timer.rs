//! The persistent incremental timing engine.
//!
//! A [`Timer`] owns a long-lived [`TimingGraph`] plus the full propagated
//! state of the design (per-net arrivals, per-net wire timings, per-
//! endpoint checks). Instead of re-timing the whole design after every
//! ECO edit — the dominant cost of the paper's Fig 1 closure loop — it
//! consumes the netlist's typed edit journal ([`NetlistEdit`]) and
//! re-propagates only the *dirty cones*: the fanout of each touched cell
//! and net, walked in levelized order until arrivals stop changing.
//!
//! Results are **bit-identical** to a from-scratch [`Sta`] run: both
//! engines share the same per-cell evaluation, wire-timing and endpoint
//! code paths, and the dirty-cone worklist visits cells in the same
//! topological order full propagation uses (see the invariants note in
//! `DESIGN.md`).
//!
//! The timer also supports O(cone) speculative editing: take a
//! [`TimerCheckpoint`], apply + evaluate a candidate fix, and
//! [`Timer::rollback_to`] the checkpoint if the fix is rejected. Every
//! state write during an update pushes its previous value onto an undo
//! log, so rollback restores exactly the bytes the update overwrote —
//! pairing with [`Netlist::undo_to`] on the netlist side.
//!
//! [`Netlist::undo_to`]: tc_netlist::Netlist::undo_to

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;
use std::sync::Arc;

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, NetId};
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_liberty::{CellKind, Library};
use tc_netlist::level::levelize;
use tc_netlist::{Netlist, NetlistEdit};

use crate::analysis::{NetState, NetWire, Sta, WireEvalScratch, WireTable};
use crate::constraints::Constraints;
use crate::pba::{self, CriticalPath};
use crate::report::{EndpointTiming, TimingReport};

/// The static structure STA needs about a netlist, derived once and
/// reused across runs: the levelized evaluation order and the position
/// of every sink pin in its net's sink list.
///
/// Structure only changes on *structural* edits (buffer insertion,
/// rewiring); value edits (Vt-swap, resize, wirelength, NDR) reuse it
/// as-is. MCMM corner timers share one graph via `Arc` — corners differ
/// in libraries and constraints, not connectivity.
#[derive(Clone, Debug)]
pub struct TimingGraph {
    /// Cells in levelized evaluation order (flops first, then
    /// combinational cells, every cell strictly after all its drivers).
    pub(crate) order: Vec<CellId>,
    /// Inverse of `order`: position of each cell, indexed by cell id.
    pub(crate) order_pos: Vec<usize>,
    /// Dense per-pin sink positions: slot `Netlist::pin_base(cell) + pin`
    /// holds that input pin's index in its driving net's sink list — the
    /// lookup arrival evaluation needs to pick the right per-sink wire
    /// delay. A flat `Vec<u32>` indexed by global input-pin number, not a
    /// hash map: the hot path is one add and one load.
    pub(crate) sink_pos: Vec<u32>,
    /// Total timing-arc count of the design (1 per flop, 1 per
    /// combinational input pin) — the denominator of arc-reuse metrics.
    pub(crate) arc_count: u64,
    /// Levelization ranks: contiguous index ranges of `order` holding
    /// cells of equal logic depth. Cells within a rank are mutually
    /// independent (an arc from `a` to `b` forces
    /// `depth(b) ≥ depth(a) + 1`), so a rank may be evaluated in any
    /// order — including in parallel — with bit-identical results.
    pub(crate) ranks: Vec<std::ops::Range<usize>>,
}

impl TimingGraph {
    /// Derives the timing structure of a netlist.
    ///
    /// # Errors
    ///
    /// Fails on combinational loops (levelization is impossible).
    pub fn build(nl: &Netlist, lib: &Library) -> Result<Self> {
        let lv = levelize(nl, lib)?;
        let mut order_pos = vec![0usize; nl.cell_count()];
        for (p, &c) in lv.order.iter().enumerate() {
            order_pos[c.index()] = p;
        }
        // Dense per-pin sink positions, written net by net. Start from
        // an invalid sentinel so the dense-id invariant is checkable.
        let mut sink_pos = vec![u32::MAX; nl.total_input_pins()];
        for i in 0..nl.net_count() {
            for (k, s) in nl.net(NetId::new(i)).sinks.iter().enumerate() {
                sink_pos[nl.pin_base(s.cell) + s.pin] = k as u32;
            }
        }
        // Every input pin must be a sink of exactly one net — the
        // invariant the flat lookup (and every id-indexed column) relies
        // on. A hole means cell ids are not dense or a sink list is
        // inconsistent with the cells' input columns; fail loudly here
        // rather than timing garbage.
        if let Some(hole) = sink_pos.iter().position(|&p| p == u32::MAX) {
            return Err(Error::internal(format!(
                "timing graph: input-pin slot {hole} of {} has no sink entry — netlist sink \
                 lists are inconsistent with the dense pin index",
                sink_pos.len()
            )));
        }
        let mut arc_count = 0u64;
        for cell in nl.cells() {
            arc_count += if lib.cell(cell.master).kind == CellKind::Flop {
                1
            } else {
                cell.inputs.len() as u64
            };
        }
        // Group the order into equal-depth ranks. Levelization's FIFO
        // sweep enqueues depth-k cells only while processing depth-k−1
        // cells, so `order` is depth-sorted and ranks are contiguous.
        let mut ranks = Vec::new();
        let mut start = 0usize;
        for p in 1..=lv.order.len() {
            if p == lv.order.len()
                || lv.depth[lv.order[p].index()] != lv.depth[lv.order[start].index()]
            {
                debug_assert!(
                    p == lv.order.len()
                        || lv.depth[lv.order[p].index()] > lv.depth[lv.order[start].index()],
                    "levelized order must be depth-sorted"
                );
                ranks.push(start..p);
                start = p;
            }
        }
        Ok(TimingGraph {
            order: lv.order,
            order_pos,
            sink_pos,
            arc_count,
            ranks,
        })
    }

    /// Index of `(cell, pin)` in its driving net's sink list.
    #[inline]
    pub(crate) fn sink_pos(&self, nl: &Netlist, cell: CellId, pin: usize) -> usize {
        self.sink_pos[nl.pin_base(cell) + pin] as usize
    }

    /// Number of cells in the evaluation order.
    pub fn cell_count(&self) -> usize {
        self.order.len()
    }

    /// Total timing-arc count of the design.
    pub fn arc_count(&self) -> u64 {
        self.arc_count
    }
}

/// An epoch-marked dense set over small integer ids (cells, nets).
///
/// `insert` is one load + one store — no hashing, and no allocation once
/// the mark vector is warm. `begin` resets in O(1) by bumping the epoch
/// instead of clearing. Replaces the HashSet-then-sort dirty-cone
/// collection: the sorted id iteration order is identical, so update
/// order (and the undo log) is byte-for-byte unchanged.
#[derive(Debug, Default)]
struct MarkSet {
    mark: Vec<u32>,
    epoch: u32,
    items: Vec<u32>,
}

impl MarkSet {
    /// Starts a new collection round over ids `0..n`.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One wrap every 2^32 rounds: clear and restart.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.items.clear();
    }

    /// Marks `i`; returns `true` on first insertion this round.
    fn insert(&mut self, i: usize) -> bool {
        if self.mark[i] == self.epoch {
            return false;
        }
        self.mark[i] = self.epoch;
        self.items.push(i as u32);
        true
    }

    /// The ids marked this round, sorted ascending.
    fn sorted_items(&mut self) -> &[u32] {
        self.items.sort_unstable();
        &self.items
    }
}

/// Reusable buffers for one incremental update: dirty-set marks, the
/// levelized worklist, and the wire-evaluation arena. Owned by the
/// [`Timer`] so the ~10⁵ transient allocations a per-update rebuild
/// would cost are paid once per timer instead.
#[derive(Debug, Default)]
struct UpdateScratch {
    dirty_nets: MarkSet,
    seed_cells: MarkSet,
    dirty_flop_eps: MarkSet,
    dirty_po_eps: MarkSet,
    queued: MarkSet,
    heap: BinaryHeap<Reverse<(usize, usize)>>,
    wire: WireEvalScratch,
}

/// A point in a timer's history that [`Timer::rollback_to`] can restore.
///
/// Pair it with the netlist-side checkpoint (`Netlist::journal_len`)
/// taken at the same moment: rolling back the netlist without rolling
/// back the timer (or vice versa) desynchronizes the two.
#[derive(Clone, Copy, Debug)]
pub struct TimerCheckpoint {
    cursor: usize,
    undo_len: usize,
}

/// One reversible write the incremental update performed. Pushed in
/// execution order; [`Timer::rollback_to`] pops in reverse.
enum UndoOp {
    /// A per-net arrival state was overwritten.
    NetState { net: usize, prev: NetState },
    /// A per-net wire timing was overwritten.
    NetWire { net: usize, prev: NetWire },
    /// A flop endpoint check was overwritten.
    FlopEp {
        cell: usize,
        prev: Option<EndpointTiming>,
    },
    /// A primary-output endpoint check was overwritten.
    PoEp {
        net: usize,
        prev: Option<EndpointTiming>,
    },
    /// A structural edit replaced the timing graph.
    Structure { prev: Arc<TimingGraph> },
    /// A structural edit grew the per-net/per-cell vectors; restore the
    /// old lengths. Pushed *before* the value ops of the same update, so
    /// popping restores values first and truncates last.
    Lens { cells: usize, nets: usize },
    /// A constraint change forced a full re-propagation; restore the
    /// complete prior state.
    Full(Box<FullSnapshot>),
}

struct FullSnapshot {
    cons: Constraints,
    state: Vec<NetState>,
    wires: WireTable,
    flop_ep: Vec<Option<EndpointTiming>>,
    po_ep: Vec<Option<EndpointTiming>>,
}

/// The persistent incremental timer.
///
/// Build one with [`Timer::new`], edit the netlist through its journaled
/// ECO mutators, then call [`Timer::update`] to re-time just the dirty
/// cones. [`Timer::report`] and [`Timer::worst_paths`] read the cached
/// results without re-propagating anything.
///
/// # Examples
///
/// ```
/// use tc_interconnect::BeolStack;
/// use tc_liberty::{LibConfig, Library, PvtCorner};
/// use tc_netlist::gen::{generate, BenchProfile};
/// use tc_sta::{Constraints, Timer};
///
/// let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
/// let mut nl = generate(&lib, BenchProfile::tiny(), 42)?;
/// let stack = BeolStack::n20();
/// let cons = Constraints::single_clock(900.0);
///
/// let mut timer = Timer::new(&nl, &lib, &stack, cons)?;
/// let before = timer.report(&nl).wns();
///
/// // Speculative fix: lengthen one net, re-time just its cone, reject.
/// let nl_cp = nl.journal_len();
/// let t_cp = timer.checkpoint();
/// nl.set_wire_length(tc_core::ids::NetId::new(0), 250.0);
/// timer.update(&nl)?;
/// let after = timer.report(&nl).wns();
/// nl.undo_to(nl_cp)?;
/// timer.rollback_to(t_cp)?;
/// assert_eq!(timer.report(&nl).wns(), before);
/// # let _ = after;
/// # Ok::<(), tc_core::Error>(())
/// ```
pub struct Timer<'a> {
    lib: &'a Library,
    stack: &'a BeolStack,
    cons: Constraints,
    beol_corner: BeolCorner,
    structure: Arc<TimingGraph>,
    state: Vec<NetState>,
    wires: WireTable,
    flop_ep: Vec<Option<EndpointTiming>>,
    po_ep: Vec<Option<EndpointTiming>>,
    /// How many journal entries have been consumed.
    cursor: usize,
    undo: Vec<UndoOp>,
    scratch: UpdateScratch,
}

fn enqueue(
    heap: &mut BinaryHeap<Reverse<(usize, usize)>>,
    queued: &mut MarkSet,
    order_pos: &[usize],
    cell: usize,
) {
    if queued.insert(cell) {
        heap.push(Reverse((order_pos[cell], cell)));
    }
}

/// Classifies one touched sink pin: flop D pins dirty their endpoint
/// check, combinational pins seed the worklist.
fn mark_sink_dirty(
    lib: &Library,
    nl: &Netlist,
    s: tc_netlist::PinRef,
    seed_cells: &mut MarkSet,
    dirty_flop_eps: &mut MarkSet,
) {
    if lib.cell(nl.cell(s.cell).master).kind == CellKind::Flop {
        if s.pin == 0 {
            dirty_flop_eps.insert(s.cell.index());
        }
    } else {
        seed_cells.insert(s.cell.index());
    }
}

impl<'a> Timer<'a> {
    /// Builds the graph and runs the initial full propagation at the
    /// typical BEOL corner.
    ///
    /// # Errors
    ///
    /// Fails on combinational loops or interconnect estimation errors.
    pub fn new(
        nl: &Netlist,
        lib: &'a Library,
        stack: &'a BeolStack,
        cons: Constraints,
    ) -> Result<Self> {
        Self::with_corner(nl, lib, stack, cons, BeolCorner::Typical)
    }

    /// Like [`Timer::new`] with an explicit BEOL extraction corner.
    ///
    /// # Errors
    ///
    /// Fails on combinational loops or interconnect estimation errors.
    pub fn with_corner(
        nl: &Netlist,
        lib: &'a Library,
        stack: &'a BeolStack,
        cons: Constraints,
        corner: BeolCorner,
    ) -> Result<Self> {
        let structure = Arc::new(TimingGraph::build(nl, lib)?);
        Self::with_structure(nl, lib, stack, cons, corner, structure)
    }

    /// Builds a timer over an existing shared graph — how MCMM corner
    /// timers avoid re-levelizing per corner.
    pub(crate) fn with_structure(
        nl: &Netlist,
        lib: &'a Library,
        stack: &'a BeolStack,
        cons: Constraints,
        corner: BeolCorner,
        structure: Arc<TimingGraph>,
    ) -> Result<Self> {
        let mut t = Timer {
            lib,
            stack,
            cons,
            beol_corner: corner,
            structure,
            state: Vec::new(),
            wires: WireTable::default(),
            flop_ep: Vec::new(),
            po_ep: Vec::new(),
            cursor: 0,
            undo: Vec::new(),
            scratch: UpdateScratch::default(),
        };
        t.refresh_all(nl)?;
        Ok(t)
    }

    fn sta<'b>(&'b self, nl: &'b Netlist) -> Sta<'b> {
        Sta {
            nl,
            lib: self.lib,
            stack: self.stack,
            cons: &self.cons,
            beol_corner: self.beol_corner,
            beol_sample: None,
            par: None,
        }
    }

    /// Full propagation into the cached vectors (initial build and
    /// constraint changes; edits go through the incremental path).
    fn refresh_all(&mut self, nl: &Netlist) -> Result<()> {
        let graph = Arc::clone(&self.structure);
        let sta = Sta {
            nl,
            lib: self.lib,
            stack: self.stack,
            cons: &self.cons,
            beol_corner: self.beol_corner,
            beol_sample: None,
            par: None,
        };
        let (state, wires) = sta.propagate_with(&graph)?;
        self.state = state;
        self.wires = wires;
        self.flop_ep = vec![None; nl.cell_count()];
        self.po_ep = vec![None; nl.net_count()];
        for fid in nl.flops(self.lib) {
            self.flop_ep[fid.index()] = sta.flop_endpoint(fid, &self.state, &self.wires)?;
        }
        for po in nl.primary_outputs() {
            self.po_ep[po.index()] = sta.po_endpoint(po, &self.state);
        }
        self.cursor = nl.journal_len();
        Ok(())
    }

    /// Consumes journal entries past the cursor and re-propagates the
    /// dirty cones. No-op when the timer is already current.
    ///
    /// Results are bit-identical to a from-scratch run over the edited
    /// netlist: same evaluation code path, same topological visit order.
    ///
    /// # Errors
    ///
    /// Fails if the netlist was rolled back *past* the timer's cursor
    /// (use [`Timer::rollback_to`] with the paired checkpoint instead),
    /// on combinational loops after structural edits, and on
    /// interconnect estimation errors.
    pub fn update(&mut self, nl: &Netlist) -> Result<()> {
        let journal_len = nl.journal_len();
        if self.cursor > journal_len {
            return Err(Error::invalid_input(format!(
                "timer cursor {} is past journal length {journal_len}: the netlist was rolled \
                 back — roll the timer back with the paired checkpoint instead",
                self.cursor
            )));
        }
        if self.cursor == journal_len {
            return Ok(());
        }
        let _span = tc_obs::span("sta.incremental");

        // All dirty-set, worklist and wire-eval buffers live in the
        // timer-owned scratch arena, so a steady-state update performs
        // no transient allocations. Taken for the duration of the call;
        // an early `?` drops the warm buffers, which only costs
        // re-warming them on the next update.
        let mut scr = mem::take(&mut self.scratch);
        scr.dirty_nets.begin(nl.net_count());
        scr.seed_cells.begin(nl.cell_count());
        scr.dirty_flop_eps.begin(nl.cell_count());
        scr.dirty_po_eps.begin(nl.net_count());
        scr.queued.begin(nl.cell_count());

        // Phase 1: scan the unconsumed journal suffix into dirty sets.
        let mut structural = false;
        for edit in &nl.journal()[self.cursor..] {
            match edit {
                NetlistEdit::SwapMaster {
                    cell,
                    old_master,
                    new_master,
                } => {
                    // Arc tables changed: re-evaluate the cell. Pin caps
                    // changed: every input net's wire timing is stale.
                    scr.seed_cells.insert(cell.index());
                    for &input in nl.cell(*cell).inputs {
                        scr.dirty_nets.insert(input.index());
                    }
                    let old_kind = self.lib.cell(*old_master).kind;
                    let new_kind = self.lib.cell(*new_master).kind;
                    if old_kind != new_kind {
                        // Flop <-> comb swaps change levelization.
                        structural = true;
                    }
                    if old_kind == CellKind::Flop || new_kind == CellKind::Flop {
                        // Setup/hold tables live on the master.
                        scr.dirty_flop_eps.insert(cell.index());
                    }
                }
                NetlistEdit::SetWireLength { net, .. } | NetlistEdit::SetRouteClass { net, .. } => {
                    scr.dirty_nets.insert(net.index());
                }
                NetlistEdit::InsertBuffer {
                    buffer,
                    buffer_out,
                    src_net,
                    moved_sinks,
                } => {
                    structural = true;
                    scr.dirty_nets.insert(src_net.index());
                    scr.dirty_nets.insert(buffer_out.index());
                    scr.seed_cells.insert(buffer.index());
                    for (s, _) in moved_sinks {
                        mark_sink_dirty(
                            self.lib,
                            nl,
                            *s,
                            &mut scr.seed_cells,
                            &mut scr.dirty_flop_eps,
                        );
                    }
                }
                NetlistEdit::RewireInput {
                    sink,
                    old_net,
                    new_net,
                    ..
                } => {
                    structural = true;
                    scr.dirty_nets.insert(old_net.index());
                    scr.dirty_nets.insert(new_net.index());
                    mark_sink_dirty(
                        self.lib,
                        nl,
                        *sink,
                        &mut scr.seed_cells,
                        &mut scr.dirty_flop_eps,
                    );
                }
            }
        }

        // Phase 2: structural edits invalidate the levelization and the
        // sink-index map; rebuild once for the whole batch and grow the
        // per-net/per-cell vectors (ids are append-only).
        if structural {
            self.undo.push(UndoOp::Lens {
                cells: self.flop_ep.len(),
                nets: self.state.len(),
            });
            self.undo.push(UndoOp::Structure {
                prev: Arc::clone(&self.structure),
            });
            self.state.resize(nl.net_count(), NetState::default());
            self.wires.resize(nl.net_count());
            self.po_ep.resize(nl.net_count(), None);
            self.flop_ep.resize(nl.cell_count(), None);
            self.structure = Arc::new(TimingGraph::build(nl, self.lib)?);
        }

        let graph = Arc::clone(&self.structure);
        let sta = Sta {
            nl,
            lib: self.lib,
            stack: self.stack,
            cons: &self.cons,
            beol_corner: self.beol_corner,
            beol_sample: None,
            par: None,
        };
        // Dirty sets iterate in sorted id order so update order (and
        // thus the undo log and any accumulated float state) is
        // deterministic — the same order the old sort-a-HashSet code
        // produced.
        for &c in scr.seed_cells.sorted_items() {
            enqueue(&mut scr.heap, &mut scr.queued, &graph.order_pos, c as usize);
        }

        // Phase 3: recompute dirty wire timings into the pooled arena.
        // A changed wire dirties its driver (load changed) and every
        // sink (arrival changed); an unchanged recomputation is trimmed
        // back off the end of the pool.
        for &n in scr.dirty_nets.sorted_items() {
            let n = n as usize;
            let start = self.wires.pool_len();
            let cand = sta.net_wire_entry(NetId::new(n), &mut scr.wire, self.wires.pool_mut())?;
            let old = self.wires.entry(n);
            if old.driver_load == cand.driver_load
                && old.si_delta == cand.si_delta
                && self.wires.delays(n) == self.wires.pool_slice(start, cand.len as usize)
            {
                self.wires.pool_truncate(start);
                continue;
            }
            let prev = self.wires.install(n, cand);
            self.undo.push(UndoOp::NetWire { net: n, prev });
            let net = nl.net(NetId::new(n));
            if let Some(drv) = net.driver {
                enqueue(
                    &mut scr.heap,
                    &mut scr.queued,
                    &graph.order_pos,
                    drv.index(),
                );
            }
            for s in net.sinks {
                if self.lib.cell(nl.cell(s.cell).master).kind == CellKind::Flop {
                    if s.pin == 0 {
                        // The D-pin wire feeds the setup/hold check
                        // directly; CK pins follow the ideal clock model.
                        scr.dirty_flop_eps.insert(s.cell.index());
                    }
                } else {
                    enqueue(
                        &mut scr.heap,
                        &mut scr.queued,
                        &graph.order_pos,
                        s.cell.index(),
                    );
                }
            }
        }

        // Phase 4: levelized worklist sweep. Flops order before all comb
        // cells and every comb cell after its drivers, so popping in
        // order position evaluates each cell at most once, after all its
        // inputs have settled — exactly what full propagation would have
        // computed. Propagation stops where arrivals stop changing.
        let mut cells_evaluated = 0u64;
        let mut arcs_recomputed = 0u64;
        while let Some(Reverse((_, c))) = scr.heap.pop() {
            let cid = CellId::new(c);
            let (ns, arcs) = sta.eval_cell(cid, &graph, &self.wires, &self.state)?;
            cells_evaluated += 1;
            arcs_recomputed += arcs;
            let out = nl.cell(cid).output;
            if ns == self.state[out.index()] {
                continue; // cone boundary: downstream is already exact
            }
            let prev = mem::replace(&mut self.state[out.index()], ns);
            self.undo.push(UndoOp::NetState {
                net: out.index(),
                prev,
            });
            let net = nl.net(out);
            if net.is_output {
                scr.dirty_po_eps.insert(out.index());
            }
            for s in net.sinks {
                if self.lib.cell(nl.cell(s.cell).master).kind == CellKind::Flop {
                    if s.pin == 0 {
                        scr.dirty_flop_eps.insert(s.cell.index());
                    }
                } else {
                    enqueue(
                        &mut scr.heap,
                        &mut scr.queued,
                        &graph.order_pos,
                        s.cell.index(),
                    );
                }
            }
        }

        // Phase 5: refresh dirty endpoint checks.
        for &c in scr.dirty_flop_eps.sorted_items() {
            let c = c as usize;
            let cid = CellId::new(c);
            let new_ep = if self.lib.cell(nl.cell(cid).master).kind == CellKind::Flop {
                sta.flop_endpoint(cid, &self.state, &self.wires)?
            } else {
                None // swapped away from a flop master
            };
            if new_ep != self.flop_ep[c] {
                let prev = mem::replace(&mut self.flop_ep[c], new_ep);
                self.undo.push(UndoOp::FlopEp { cell: c, prev });
            }
        }
        for &n in scr.dirty_po_eps.sorted_items() {
            let n = n as usize;
            let new_ep = sta.po_endpoint(NetId::new(n), &self.state);
            if new_ep != self.po_ep[n] {
                let prev = mem::replace(&mut self.po_ep[n], new_ep);
                self.undo.push(UndoOp::PoEp { net: n, prev });
            }
        }

        self.cursor = journal_len;
        self.scratch = scr;
        tc_obs::histogram("sta.dirty_cone_size").record(cells_evaluated as f64);
        tc_obs::counter("sta.arcs_recomputed").add(arcs_recomputed);
        tc_obs::counter("sta.arcs_reused")
            .add(self.structure.arc_count.saturating_sub(arcs_recomputed));
        Ok(())
    }

    /// Marks the current state for later [`Timer::rollback_to`]. Cheap
    /// (two integers); take one together with `Netlist::journal_len`.
    pub fn checkpoint(&self) -> TimerCheckpoint {
        TimerCheckpoint {
            cursor: self.cursor,
            undo_len: self.undo.len(),
        }
    }

    /// Restores the exact timer state at `cp` by replaying the undo log
    /// in reverse — O(writes since the checkpoint), not O(design).
    ///
    /// # Errors
    ///
    /// Fails if `cp` is newer than the timer's current state (rollback
    /// only goes backwards).
    pub fn rollback_to(&mut self, cp: TimerCheckpoint) -> Result<()> {
        if cp.undo_len > self.undo.len() || cp.cursor > self.cursor {
            return Err(Error::invalid_input(
                "checkpoint is newer than the timer state",
            ));
        }
        while self.undo.len() > cp.undo_len {
            match self.undo.pop().expect("length checked") {
                UndoOp::NetState { net, prev } => self.state[net] = prev,
                UndoOp::NetWire { net, prev } => self.wires.restore(net, prev),
                UndoOp::FlopEp { cell, prev } => self.flop_ep[cell] = prev,
                UndoOp::PoEp { net, prev } => self.po_ep[net] = prev,
                UndoOp::Structure { prev } => self.structure = prev,
                UndoOp::Lens { cells, nets } => {
                    self.state.truncate(nets);
                    self.wires.truncate(nets);
                    self.po_ep.truncate(nets);
                    self.flop_ep.truncate(cells);
                }
                UndoOp::Full(snap) => {
                    self.cons = snap.cons;
                    self.state = snap.state;
                    self.wires = snap.wires;
                    self.flop_ep = snap.flop_ep;
                    self.po_ep = snap.po_ep;
                }
            }
        }
        self.cursor = cp.cursor;
        Ok(())
    }

    /// Replaces the constraint set (e.g. after useful-skew moved clock
    /// arrivals) and re-propagates everything — constraints touch every
    /// path, so there is no cone to exploit. The change is still
    /// checkpointable: rollback restores the old constraints and state.
    ///
    /// # Errors
    ///
    /// Fails if the timer is stale (call [`Timer::update`] first) or on
    /// propagation errors.
    pub fn set_constraints(&mut self, nl: &Netlist, cons: Constraints) -> Result<()> {
        if self.cursor != nl.journal_len() {
            return Err(Error::invalid_input(
                "set_constraints requires an up-to-date timer: call update first",
            ));
        }
        let snap = FullSnapshot {
            cons: mem::replace(&mut self.cons, cons),
            state: self.state.clone(),
            wires: self.wires.clone(),
            flop_ep: self.flop_ep.clone(),
            po_ep: self.po_ep.clone(),
        };
        self.undo.push(UndoOp::Full(Box::new(snap)));
        self.refresh_all(nl)
    }

    /// Assembles the timing report from the cached endpoint checks —
    /// same endpoint order as [`Sta::run`] (flops in cell-id order, then
    /// primary outputs in net-id order), no propagation.
    pub fn report(&self, nl: &Netlist) -> TimingReport {
        let mut endpoints = Vec::new();
        for fid in nl.flops(self.lib) {
            if let Some(ep) = &self.flop_ep[fid.index()] {
                endpoints.push(ep.clone());
            }
        }
        for po in nl.primary_outputs() {
            if let Some(ep) = &self.po_ep[po.index()] {
                endpoints.push(ep.clone());
            }
        }
        TimingReport::from_endpoints(endpoints, self.cons.default_clock().period)
    }

    /// Extracts the worst paths from the cached propagation state (the
    /// closure fix engine's work list) without re-running STA.
    ///
    /// # Errors
    ///
    /// Propagates path-backtracking failures.
    pub fn worst_paths(&self, nl: &Netlist, k: usize) -> Result<Vec<CriticalPath>> {
        let sta = self.sta(nl);
        let report = self.report(nl);
        pba::worst_paths_from(&sta, &report, &self.state, &self.wires, k)
    }

    /// The active constraint set.
    pub fn constraints(&self) -> &Constraints {
        &self.cons
    }

    /// Cached per-net propagation states (net-id indexed).
    pub fn states(&self) -> &[NetState] {
        &self.state
    }

    /// Cached per-net wire timings (net-id indexed).
    pub fn wires(&self) -> &WireTable {
        &self.wires
    }

    /// How many journal entries the timer has consumed.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The shared timing structure.
    pub fn graph(&self) -> &TimingGraph {
        &self.structure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::units::Ps;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env() -> (Library, BeolStack) {
        (
            Library::generate(&LibConfig::default(), &PvtCorner::typical()),
            BeolStack::n20(),
        )
    }

    /// Full-STA ground truth for the current netlist.
    fn full(nl: &Netlist, lib: &Library, stack: &BeolStack, cons: &Constraints) -> TimingReport {
        Sta::new(nl, lib, stack, cons).run().unwrap()
    }

    fn assert_matches_full(timer: &Timer<'_>, nl: &Netlist, lib: &Library, stack: &BeolStack) {
        let sta = Sta::new(nl, lib, stack, timer.constraints());
        let (state, wires) = sta.propagate().unwrap();
        assert_eq!(timer.states(), &state[..], "net states diverged");
        assert_eq!(timer.wires(), &wires, "wire timings diverged");
        let fresh = sta.report_from(&state, &wires).unwrap();
        assert_eq!(
            timer.report(nl).endpoints,
            fresh.endpoints,
            "reports diverged"
        );
    }

    #[test]
    fn fresh_timer_matches_full_sta() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let cons = Constraints::single_clock(900.0);
        let timer = Timer::new(&nl, &lib, &stack, cons.clone()).unwrap();
        let fresh = full(&nl, &lib, &stack, &cons);
        assert_eq!(timer.report(&nl).endpoints, fresh.endpoints);
        assert_eq!(timer.report(&nl).wns(), fresh.wns());
    }

    #[test]
    fn value_edits_retime_incrementally_and_exactly() {
        let (lib, stack) = env();
        let mut nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let cons = Constraints::single_clock(900.0);
        let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();

        // Wirelength, NDR, and a Vt swap on some mid-design objects.
        nl.set_wire_length(NetId::new(nl.net_count() / 2), 300.0);
        nl.set_route_class(NetId::new(nl.net_count() / 3), 2);
        let victim = nl
            .cells()
            .position(|c| lib.cell(c.master).kind != CellKind::Flop)
            .unwrap();
        let m = lib.cell(nl.cell(CellId::new(victim)).master);
        if let Some(alt) = lib.variant(m.template.name, VtClass::Lvt, m.drive) {
            nl.swap_master(&lib, CellId::new(victim), alt).unwrap();
        }
        timer.update(&nl).unwrap();
        assert_matches_full(&timer, &nl, &lib, &stack);
    }

    #[test]
    fn structural_edit_rebuilds_and_matches() {
        let (lib, stack) = env();
        let mut nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let cons = Constraints::single_clock(900.0);
        let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();

        // Buffer the widest-fanout net.
        let fat = (0..nl.net_count())
            .filter(|&n| nl.net(NetId::new(n)).driver.is_some())
            .max_by_key(|&n| nl.net(NetId::new(n)).sinks.len())
            .unwrap();
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        let sinks = nl.net(NetId::new(fat)).sinks.to_vec();
        nl.insert_buffer(&lib, NetId::new(fat), &sinks, buf)
            .unwrap();
        timer.update(&nl).unwrap();
        assert_matches_full(&timer, &nl, &lib, &stack);
    }

    #[test]
    fn rollback_restores_exact_state() {
        let (lib, stack) = env();
        let mut nl = generate(&lib, BenchProfile::tiny(), 9).unwrap();
        let cons = Constraints::single_clock(900.0);
        let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();
        let before_states = timer.states().to_vec();
        let before_report = timer.report(&nl);

        let nl_cp = nl.journal_len();
        let t_cp = timer.checkpoint();
        // A structural + a value edit, then reject both.
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        let fat = (0..nl.net_count())
            .filter(|&n| nl.net(NetId::new(n)).driver.is_some())
            .max_by_key(|&n| nl.net(NetId::new(n)).sinks.len())
            .unwrap();
        let sinks = nl.net(NetId::new(fat)).sinks.to_vec();
        nl.insert_buffer(&lib, NetId::new(fat), &sinks, buf)
            .unwrap();
        nl.set_wire_length(NetId::new(1), 400.0);
        timer.update(&nl).unwrap();
        assert_ne!(timer.states().len(), before_states.len());

        nl.undo_to(nl_cp).unwrap();
        timer.rollback_to(t_cp).unwrap();
        assert_eq!(timer.states(), &before_states[..]);
        assert_eq!(timer.report(&nl).endpoints, before_report.endpoints);
        assert_eq!(timer.cursor(), nl.journal_len());
        // And the rolled-back timer still updates correctly afterwards.
        nl.set_wire_length(NetId::new(2), 150.0);
        timer.update(&nl).unwrap();
        assert_matches_full(&timer, &nl, &lib, &stack);
    }

    #[test]
    fn set_constraints_repropagates_and_rolls_back() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let mut timer = Timer::new(&nl, &lib, &stack, Constraints::single_clock(900.0)).unwrap();
        let before = timer.report(&nl);
        let cp = timer.checkpoint();

        timer
            .set_constraints(&nl, Constraints::single_clock(500.0))
            .unwrap();
        assert_eq!(timer.constraints().default_clock().period, Ps::new(500.0));
        assert!(timer.report(&nl).wns() < before.wns());
        assert_matches_full(&timer, &nl, &lib, &stack);

        timer.rollback_to(cp).unwrap();
        assert_eq!(timer.constraints().default_clock().period, Ps::new(900.0));
        assert_eq!(timer.report(&nl).endpoints, before.endpoints);
    }

    #[test]
    fn update_rejects_netlist_rolled_back_past_cursor() {
        let (lib, stack) = env();
        let mut nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let mut timer = Timer::new(&nl, &lib, &stack, Constraints::single_clock(900.0)).unwrap();
        let cp = nl.journal_len();
        nl.set_wire_length(NetId::new(0), 99.0);
        timer.update(&nl).unwrap();
        nl.undo_to(cp).unwrap();
        assert!(timer.update(&nl).is_err());
    }

    #[test]
    fn no_op_update_touches_nothing() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let mut timer = Timer::new(&nl, &lib, &stack, Constraints::single_clock(900.0)).unwrap();
        let cp = timer.checkpoint();
        timer.update(&nl).unwrap();
        let cp2 = timer.checkpoint();
        assert_eq!(cp.undo_len, cp2.undo_len);
        assert_eq!(cp.cursor, cp2.cursor);
    }
}
