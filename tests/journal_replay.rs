//! ECO-journal interchange: export, validated replay, and the
//! rollback-after-failed-edit contract with the incremental `Timer`.
//!
//! The handoff scenario: a fix engine edits its copy of the design,
//! exports the journal suffix as text, and a signoff process replays it
//! onto its own copy. A journal that names objects the target doesn't
//! have must fail with a typed, positioned error AND leave the target —
//! and any `Timer` watching it — exactly where they were.

use timing_closure::interconnect::beol::BeolStack;
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::netlist::{decode_journal, replay_journal, write_journal, JournalCmd};
use timing_closure::sta::{Constraints, Timer};

fn setup() -> (Library, BeolStack) {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    (lib, BeolStack::n20())
}

#[test]
fn exported_journal_replays_onto_a_fresh_copy() {
    let (lib, stack) = setup();
    let mut edited = generate(&lib, BenchProfile::tiny(), 7).unwrap();
    let mut copy = edited.clone();
    let cp = edited.journal_len();

    // A representative ECO sequence on the "fix" side.
    edited.set_wire_length(timing_closure::core::ids::NetId::new(4), 33.5);
    edited.set_route_class(timing_closure::core::ids::NetId::new(4), 2);

    let text = write_journal(&edited, &lib, cp);
    let cmds = decode_journal(&text).unwrap();
    replay_journal(&mut copy, &lib, &cmds).unwrap();
    copy.validate(&lib).unwrap();

    // Both sides now time identically.
    let cons = Constraints::single_clock(900.0);
    let t_edit = Timer::new(&edited, &lib, &stack, cons.clone()).unwrap();
    let t_copy = Timer::new(&copy, &lib, &stack, cons).unwrap();
    assert_eq!(
        t_edit.report(&edited).wns(),
        t_copy.report(&copy).wns(),
        "replayed copy times differently"
    );
}

#[test]
fn failed_replay_leaves_timer_consistent() {
    let (lib, stack) = setup();
    let mut nl = generate(&lib, BenchProfile::tiny(), 7).unwrap();
    let cons = Constraints::single_clock(900.0);
    let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();
    let wns_before = timer.report(&nl).wns();
    let cp = nl.journal_len();

    // Two valid edits followed by one naming a cell the netlist does not
    // have: replay must apply nothing.
    let cmds = vec![
        JournalCmd::SetWireLength { net: 2, um: 77.0 },
        JournalCmd::SetRouteClass { net: 2, class: 1 },
        JournalCmd::Swap {
            cell: 999_999,
            new_master: "INV_X1_SVT".to_string(),
        },
    ];
    let err = replay_journal(&mut nl, &lib, &cmds).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("entry 2"), "no entry context in: {msg}");

    // The netlist is back at the checkpoint, so the timer's cursor still
    // matches the journal and `update` is a no-op.
    assert_eq!(nl.journal_len(), cp);
    timer.update(&nl).unwrap();
    assert_eq!(
        timer.report(&nl).wns(),
        wns_before,
        "failed replay perturbed timing"
    );

    // After the failure the same timer keeps working for a valid replay.
    let good = vec![JournalCmd::SetWireLength { net: 2, um: 77.0 }];
    replay_journal(&mut nl, &lib, &good).unwrap();
    timer.update(&nl).unwrap();
    let _ = timer.report(&nl).wns();
    assert_eq!(nl.journal_len(), cp + 1);
}
