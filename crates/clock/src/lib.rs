#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-clock — clock distribution and clock-related margin recovery
//!
//! The paper repeatedly singles the clock network out: MCMM clock
//! synthesis "where each of hundreds of scenarios has different clock
//! insertion delay" (§1.2), flat jitter margins that "sweep PLL jitter,
//! CTS jitter and IR-drop margin under a single rug" (§1.3 footnote),
//! cycle-to-cycle jitter margining (§3.4), and useful skew as both a
//! closure fix (Fig 1) and a future optimization (\[6\], §4).
//!
//! * [`cts`] — recursive-bisection clock-tree synthesis over a
//!   `tc-placement` placement, producing the latency model `tc-sta`
//!   consumes; multi-corner skew reporting.
//! * [`jitter`] — flat vs cycle-to-cycle jitter margining.
//! * [`useful_skew`] — greedy STA-in-the-loop leaf-latency adjustment
//!   (the "useful skew" fix).
//!
//! # Examples
//!
//! ```
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_netlist::gen::{generate, BenchProfile};
//! use tc_placement::rows::Placement;
//! use tc_clock::cts::ClockTree;
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nl = generate(&lib, BenchProfile::tiny(), 1)?;
//! let pl = Placement::row_fill(&nl, &lib, 64, 7);
//! let tree = ClockTree::synthesize(&nl, &lib, &pl, 8);
//! assert!(tree.skew().value() >= 0.0);
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod cts;
pub mod jitter;
pub mod useful_skew;

pub use cts::ClockTree;
pub use jitter::JitterModel;
pub use useful_skew::optimize_useful_skew;
