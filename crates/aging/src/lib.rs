#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-aging — BTI aging, AVS, and aging-aware signoff
//!
//! Paper §3.3 (ref \[1\]): adaptive voltage scaling compensates BTI aging,
//! but raising the supply *accelerates* aging — a chicken-egg loop that
//! the signoff corner must anticipate. Underestimate aging and the part
//! burns lifetime energy at elevated voltage; overestimate it and the
//! part carries permanent area/power from pessimistic sizing. **Fig 9**
//! sweeps that signoff knob for four benchmarks.
//!
//! * [`bti`] — a reaction-diffusion-flavoured BTI ΔVt(t, V, T) model
//!   with voltage acceleration.
//! * [`avs`] — the closed-loop lifetime simulation: at each epoch the
//!   controller picks the lowest supply meeting the delay target given
//!   the accumulated ΔVt; aging then proceeds at that supply.
//! * [`signoff`] — the Fig 9 sweep: per assumed signoff corner, size the
//!   design, run the AVS lifetime, report (area %, lifetime-average
//!   power %).
//! * [`monitor`] — design-dependent ring-oscillator monitors (ref \[3\])
//!   whose tracking error sets the AVS guardband.
//!
//! # Examples
//!
//! ```
//! use tc_aging::bti::BtiModel;
//! use tc_core::units::{Celsius, Volt};
//!
//! let bti = BtiModel::nominal_28nm();
//! let dvt = bti.delta_vt(10.0, Volt::new(0.9), Celsius::new(105.0));
//! assert!(dvt > 0.02 && dvt < 0.09); // tens of mV over 10 years
//! ```

pub mod avs;
pub mod bti;
pub mod monitor;
pub mod signoff;

pub use avs::{AvsSystem, AvsTrace};
pub use bti::BtiModel;
pub use monitor::RingOscMonitor;
pub use signoff::{aging_signoff_sweep, SignoffOutcome};
