//! Deterministic pseudo-random number generation.
//!
//! The Monte Carlo experiments in this workspace (Figures 7 and 8 of the
//! paper, the POCV/LVF extraction flows, the synthetic netlist generators)
//! must be reproducible bit-for-bit from a seed recorded in
//! `EXPERIMENTS.md`. We therefore ship a small, self-contained
//! **xoshiro256\*\*** generator seeded through SplitMix64, rather than
//! depending on an external crate whose stream may change across versions.
//!
//! Samplers provided: uniform, Gaussian (Box–Muller), and Azzalini
//! skew-normal — the latter models the asymmetric ("setup long tail")
//! path-delay distributions of the paper's Figure 7.
//!
//! # Examples
//!
//! ```
//! use tc_core::rng::Rng;
//!
//! let mut a = Rng::seed_from(42);
//! let mut b = Rng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // reproducible
//! let u = a.uniform();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the most recent Box–Muller pair.
    gauss_spare: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. The same seed always yields
    /// the same stream.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each Monte
    /// Carlo sample or netlist generator its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// The `stream`-th member of the seed's generator family:
    /// `(seed, stream)` fully determines the stream, independent of any
    /// other generator's consumption. Parallel Monte Carlo gives each
    /// fixed-size sample chunk its own stream, which makes the combined
    /// sample sequence bit-identical at any worker count.
    pub fn stream_from(seed: u64, stream: u64) -> Self {
        // Avalanche the (seed, stream) pair through SplitMix64 twice so
        // adjacent stream indices share no statistical structure.
        let mut sm = seed;
        let mixed_seed = splitmix64(&mut sm);
        let mut sm2 = mixed_seed ^ stream;
        Rng::seed_from(splitmix64(&mut sm2))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation; bias is < 2^-32 for the n used
        // in this workspace (all far below u32::MAX).
        ((self.next_u64() >> 32).wrapping_mul(n as u64) >> 32) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via Box–Muller (with pair caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(bits) = self.gauss_spare.take() {
            return f64::from_bits(bits);
        }
        // Rejection-free polar-less form: u1 in (0,1], u2 in [0,1).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.gauss_spare = Some(z1.to_bits());
        z0
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.gaussian()
    }

    /// Azzalini skew-normal sample with location 0, scale 1 and shape
    /// `alpha`. Positive `alpha` produces a right (late/setup) tail — the
    /// asymmetry of the paper's Figure 7.
    pub fn skew_normal(&mut self, alpha: f64) -> f64 {
        let delta = alpha / (1.0 + alpha * alpha).sqrt();
        let z1 = self.gaussian();
        let z2 = self.gaussian();
        delta * z1.abs() + (1.0 - delta * delta).sqrt() * z2
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(8);
        assert_ne!(Rng::seed_from(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_is_in_range_and_covers() {
        let mut r = Rng::seed_from(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed_from(2);
        let xs: Vec<f64> = (0..50_000).map(|_| r.gaussian()).collect();
        let s = Summary::of(&xs);
        assert!(s.mean.abs() < 0.02, "mean {}", s.mean);
        assert!((s.sigma - 1.0).abs() < 0.02, "sigma {}", s.sigma);
        assert!(s.skewness.abs() < 0.05, "skew {}", s.skewness);
    }

    #[test]
    fn skew_normal_is_skewed_in_requested_direction() {
        let mut r = Rng::seed_from(3);
        let right: Vec<f64> = (0..40_000).map(|_| r.skew_normal(4.0)).collect();
        let left: Vec<f64> = (0..40_000).map(|_| r.skew_normal(-4.0)).collect();
        assert!(Summary::of(&right).skewness > 0.3);
        assert!(Summary::of(&left).skewness < -0.3);
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::seed_from(4);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut parent = Rng::seed_from(6);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        // Same (seed, stream) → same sequence.
        let mut a = Rng::stream_from(9, 3);
        let mut b = Rng::stream_from(9, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent streams and adjacent seeds diverge.
        assert_ne!(
            Rng::stream_from(9, 3).next_u64(),
            Rng::stream_from(9, 4).next_u64()
        );
        assert_ne!(
            Rng::stream_from(9, 3).next_u64(),
            Rng::stream_from(10, 3).next_u64()
        );
    }

    #[test]
    fn stream_moments_stay_gaussian() {
        // Concatenating many short streams must still sample the target
        // distribution (no inter-stream correlation artifacts).
        let xs: Vec<f64> = (0..64)
            .flat_map(|c| {
                let mut r = Rng::stream_from(0xC0FFEE, c);
                (0..512).map(move |_| r.gaussian()).collect::<Vec<_>>()
            })
            .collect();
        let s = Summary::of(&xs);
        assert!(s.mean.abs() < 0.02, "mean {}", s.mean);
        assert!((s.sigma - 1.0).abs() < 0.02, "sigma {}", s.sigma);
    }
}
