#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-signoff — signoff methodology
//!
//! The paper's thesis is that signoff *criteria* — which corners, which
//! margins, which goalposts — now dominate timing-closure effort. This
//! crate implements that methodology layer:
//!
//! * [`corners`] — the corner super-explosion of §2.3: enumeration over
//!   modes × PVT × BEOL × aging × cross-domain interfaces, historical
//!   per-node counts (Fig 3's arc), and dominance-based pruning.
//! * [`margins`] — signoff strategies: classic worst-case + flat margins
//!   vs the AVS-enabled signoff-at-typical-plus-margin of §1.3, and the
//!   parametric yield-vs-slack view of Lutkemeyer's "old goalposts"
//!   remark.
//! * [`margin_recovery`] — flexible flip-flop timing (ref \[23\], §3.4):
//!   sequential optimization over the setup–hold–c2q surface that
//!   recovers "free" margin at path boundaries (up to ~130 ps at 65 nm
//!   in the paper).
//! * [`era`] — the Fig 2 old-vs-new feature matrix and the Fig 3
//!   care-abouts-by-node timeline, as queryable data.
//!
//! # Examples
//!
//! ```
//! use tc_signoff::corners::CornerSpace;
//!
//! let full = CornerSpace::n16_soc();
//! // The N16 product sees a corner count in the hundreds.
//! assert!(full.count() > 200);
//! ```

pub mod corners;
pub mod era;
pub mod ir;
pub mod margin_recovery;
pub mod margins;

pub use corners::{CornerSpace, Mode};
pub use era::{care_abouts, old_vs_new, CareAbout};
pub use ir::{compare_flat_vs_dynamic, GridModel, IrGrid};
pub use margin_recovery::{recover_margin, FlopBoundary, RecoveryResult};
pub use margins::{SignoffStrategy, YieldModel};
