//! Monte Carlo engines: path-level local variation and netlist-level
//! BEOL variation.

use tc_core::error::Result;
use tc_core::rng::Rng;
use tc_core::stats::{tail_sigmas, TailSigmas};
use tc_core::units::Ps;
use tc_interconnect::beol::BeolStack;
use tc_liberty::Library;
use tc_netlist::Netlist;
use tc_sta::{Constraints, Sta};

/// Samples per RNG stream in chunked Monte Carlo. Fixed (not derived
/// from the worker count) so the drawn sequence is a pure function of
/// `(n, seed)`.
const MC_CHUNK: usize = 256;

/// Local-variation model of one path stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageModel {
    /// Nominal stage delay, ps.
    pub nominal: f64,
    /// Relative 1σ of local variation.
    pub sigma_rel: f64,
    /// Skew-normal shape parameter; positive skews late (the transistor
    /// current's nonlinear response to Vt variation lengthens the slow
    /// tail — Fig 7's physics).
    pub skew_alpha: f64,
}

/// A path as a sequence of independently varying stages.
#[derive(Clone, Debug, PartialEq)]
pub struct PathModel {
    /// The stages, launch to capture.
    pub stages: Vec<StageModel>,
}

impl PathModel {
    /// A path of `n` identical stages.
    pub fn uniform(n: usize, nominal: f64, sigma_rel: f64, skew_alpha: f64) -> Self {
        PathModel {
            stages: vec![
                StageModel {
                    nominal,
                    sigma_rel,
                    skew_alpha,
                };
                n
            ],
        }
    }

    /// Nominal (zero-variation) path delay.
    pub fn nominal(&self) -> f64 {
        self.stages.iter().map(|s| s.nominal).sum()
    }

    /// Draws one path-delay sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.stages
            .iter()
            .map(|s| {
                // Azzalini skew-normal, re-centered so its mean is 0 —
                // keeps the sample mean at the nominal delay.
                let delta = s.skew_alpha / (1.0 + s.skew_alpha * s.skew_alpha).sqrt();
                let mean_shift = delta * (2.0 / std::f64::consts::PI).sqrt();
                let z = rng.skew_normal(s.skew_alpha) - mean_shift;
                s.nominal * (1.0 + s.sigma_rel * z)
            })
            .sum()
    }

    /// Runs `n` samples with the given seed.
    ///
    /// Samples are drawn in fixed-size chunks, each from its own
    /// `(seed, chunk_index)` RNG stream, so the result is a pure
    /// function of `(n, seed)` — bit-identical at any worker count
    /// (including 1). The seeded stream therefore differs from the
    /// historical single-`Rng` sequence, a one-time break recorded in
    /// `EXPERIMENTS.md`.
    pub fn monte_carlo(&self, n: usize, seed: u64) -> Vec<f64> {
        self.monte_carlo_on(tc_par::Pool::from_env(), n, seed)
    }

    /// [`monte_carlo`](Self::monte_carlo) on an explicit worker pool
    /// (tests pin the worker count this way instead of mutating
    /// `TC_PAR_THREADS`).
    pub fn monte_carlo_on(&self, pool: tc_par::Pool, n: usize, seed: u64) -> Vec<f64> {
        let mut out = vec![0.0f64; n];
        pool.chunked_for_each(&mut out, MC_CHUNK, |chunk_index, slot| {
            let mut rng = Rng::stream_from(seed, chunk_index as u64);
            for s in slot.iter_mut() {
                *s = self.sample(&mut rng);
            }
        });
        out
    }

    /// Convenience: MC then split-tail sigma extraction (the LVF
    /// characterization step).
    pub fn tail_sigmas(&self, n: usize, seed: u64) -> TailSigmas {
        tail_sigmas(&self.monte_carlo(n, seed))
    }
}

/// Per-endpoint worst-slack samples from a netlist-level BEOL Monte
/// Carlo: each trial draws one per-layer variation sample and re-runs
/// STA. Returns the WNS of each trial.
///
/// Each trial draws its BEOL sample from its own `(seed, trial)` RNG
/// stream, so the trial sequence is a pure function of `(trials, seed)`
/// and the sweep parallelizes without reordering results.
///
/// # Errors
///
/// Propagates STA failures (first failing trial in trial order).
pub fn beol_monte_carlo_wns(
    nl: &Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    trials: usize,
    seed: u64,
) -> Result<Vec<Ps>> {
    beol_monte_carlo_wns_on(tc_par::Pool::from_env(), nl, lib, stack, cons, trials, seed)
}

/// [`beol_monte_carlo_wns`] on an explicit worker pool.
///
/// # Errors
///
/// Propagates STA failures (first failing trial in trial order).
pub fn beol_monte_carlo_wns_on(
    pool: tc_par::Pool,
    nl: &Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    trials: usize,
    seed: u64,
) -> Result<Vec<Ps>> {
    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    pool.scope_map(&trial_ids, |_, &trial| {
        let mut rng = Rng::stream_from(seed, trial);
        let sample = stack.sample(&mut rng);
        let report = Sta::new(nl, lib, stack, cons)
            .with_beol_sample(&sample)
            .run()?;
        Ok(report.wns())
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::stats::Summary;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    #[test]
    fn mc_mean_matches_nominal() {
        let p = PathModel::uniform(10, 20.0, 0.05, 3.0);
        let xs = p.monte_carlo(40_000, 1);
        let s = Summary::of(&xs);
        assert!(
            (s.mean - p.nominal()).abs() < 0.5,
            "mean {} vs nominal {}",
            s.mean,
            p.nominal()
        );
    }

    #[test]
    fn deep_paths_average_out_relative_variation() {
        // σ/µ of an n-stage path shrinks like 1/√n — the statistical
        // averaging AOCV models via stage count.
        let short = PathModel::uniform(2, 20.0, 0.05, 0.0);
        let long = PathModel::uniform(32, 20.0, 0.05, 0.0);
        let s_short = Summary::of(&short.monte_carlo(30_000, 2));
        let s_long = Summary::of(&long.monte_carlo(30_000, 2));
        let rel_short = s_short.sigma / s_short.mean;
        let rel_long = s_long.sigma / s_long.mean;
        assert!(
            rel_long < rel_short / 3.0,
            "32 stages should cut σ/µ by ~4×: {rel_short} → {rel_long}"
        );
    }

    #[test]
    fn skew_produces_setup_long_tail() {
        let p = PathModel::uniform(12, 20.0, 0.06, 4.0);
        let t = p.tail_sigmas(60_000, 3);
        assert!(
            t.late > 1.1 * t.early,
            "late σ {} must exceed early σ {}",
            t.late,
            t.early
        );
        // Without skew the tails are symmetric.
        let sym = PathModel::uniform(12, 20.0, 0.06, 0.0);
        let ts = sym.tail_sigmas(60_000, 3);
        assert!((ts.late / ts.early - 1.0).abs() < 0.1);
    }

    #[test]
    fn beol_mc_produces_spread() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let mut nl = generate(&lib, BenchProfile::tiny(), 4).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(tc_core::ids::NetId::new(i), 120.0);
        }
        let stack = BeolStack::n20();
        let cons = Constraints::single_clock(1_200.0);
        let wns = beol_monte_carlo_wns(&nl, &lib, &stack, &cons, 20, 7).unwrap();
        let vals: Vec<f64> = wns.iter().map(|p| p.value()).collect();
        let s = Summary::of(&vals);
        assert!(
            s.sigma > 0.1,
            "BEOL variation must move WNS, σ = {}",
            s.sigma
        );
    }
}
