//! End-to-end flight-recorder check over a real engine run: an MCMM
//! corner sweep on a pinned 2-worker pool must leave a valid,
//! B/E-balanced Chrome trace with events from at least two threads.
//! (Worker count is pinned here — CI runs the test suite with
//! `TC_PAR_THREADS=1`, which must not flatten this trace.)

use tc_interconnect::beol::BeolCorner;
use tc_interconnect::BeolStack;
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_obs::JsonValue;
use tc_par::Pool;
use tc_signoff::corners::run_corner_set_on;
use tc_sta::mcmm::Scenario;
use tc_sta::Constraints;

#[test]
fn corner_sweep_on_two_workers_records_a_two_thread_trace() {
    tc_obs::enable();
    tc_obs::clear_trace();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);

    let cfg = LibConfig::default();
    let lib = Library::generate(&cfg, &PvtCorner::typical());
    let nl = tc_bench::bench_netlist(&lib, "tiny", 7);
    let stack = BeolStack::n20();
    let scenarios: Vec<Scenario> = [
        ("typ", PvtCorner::typical(), BeolCorner::Typical),
        ("slow", PvtCorner::slow_cold(), BeolCorner::RcWorst),
        ("fast", PvtCorner::fast_cold(), BeolCorner::CBest),
        ("hot", PvtCorner::slow_hot(), BeolCorner::CWorst),
    ]
    .into_iter()
    .map(|(name, pvt, beol)| Scenario {
        name: name.to_string(),
        lib: Library::generate(&cfg, &pvt),
        beol,
        constraints: Constraints::single_clock(4_000.0),
    })
    .collect();

    run_corner_set_on(Pool::new(2), &nl, &stack, &scenarios).expect("corner sweep");

    let snap = tc_obs::trace_snapshot();
    tc_obs::disable_trace();
    assert_eq!(snap.dropped, 0);
    assert!(
        snap.thread_ids().len() >= 2,
        "a 2-worker sweep of 4 corners must emit from >=2 threads, got {:?}",
        snap.thread_ids()
    );
    assert!(
        snap.events
            .iter()
            .filter(|e| &*e.name == "par.task")
            .count()
            >= 4,
        "every claimed corner emits a par.task scope"
    );

    let text = snap.to_chrome_trace();
    let doc = JsonValue::parse(&text).expect("chrome trace is valid JSON");
    let JsonValue::Obj(pairs) = &doc else {
        panic!("trace document is not an object");
    };
    let Some((_, JsonValue::Arr(events))) = pairs.iter().find(|(k, _)| k == "traceEvents") else {
        panic!("no traceEvents array");
    };
    let mut depth = std::collections::BTreeMap::new();
    let mut last_ts = std::collections::BTreeMap::new();
    for ev in events {
        let JsonValue::Obj(fields) = ev else {
            panic!("event is not an object")
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(JsonValue::Str(ph)) = get("ph") else {
            panic!("event without ph")
        };
        let Some(JsonValue::Num(ts)) = get("ts") else {
            panic!("event without ts")
        };
        let Some(JsonValue::Num(tid)) = get("tid") else {
            panic!("event without tid")
        };
        let tid = *tid as u64;
        if let Some(prev) = last_ts.insert(tid, *ts) {
            assert!(*ts >= prev, "ts regressed on tid {tid}");
        }
        let d = depth.entry(tid).or_insert(0i64);
        match ph.as_str() {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "unmatched E on tid {tid}");
            }
            _ => {}
        }
    }
    assert!(depth.len() >= 2, "exported trace spans >=2 tids");
    assert!(depth.values().all(|&d| d == 0), "unbalanced B/E: {depth:?}");
}
