//! **Fig 3** — the evolution of timing-closure care-abouts across
//! technology nodes: each node inherits every older concern and adds its
//! own.

use tc_bench::print_table;
use tc_signoff::era::{active_at_node, care_abouts};

fn main() {
    let rows: Vec<Vec<String>> = care_abouts()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{} nm", c.first_node_nm),
                c.note.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 3: care-abouts by onset node",
        &["concern", "onset", "note"],
        &rows,
    );

    let counts: Vec<Vec<String>> = [90u32, 65, 40, 28, 20, 16, 10]
        .iter()
        .map(|&n| vec![format!("{n} nm"), active_at_node(n).len().to_string()])
        .collect();
    print_table(
        "Active care-about count per node (the accumulating burden)",
        &["node", "active concerns"],
        &counts,
    );
}
