//! §2.3 — the corner super-explosion: analysis-view counts for a 65 nm
//! design vs a 16 nm SoC, the per-multi-patterned-layer BEOL doubling,
//! and dominance-based pruning on a real MCMM run.

use tc_bench::{print_table, standard_env};
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_signoff::corners::{prune_by_dominance, CornerSpace};
use tc_sta::mcmm::{run_and_merge, Scenario};
use tc_sta::Constraints;

fn main() {
    let old = CornerSpace::n65_classic();
    let new = CornerSpace::n16_soc();
    let rows = vec![
        vec![
            "65 nm classic".to_string(),
            old.modes.len().to_string(),
            old.pvt.len().to_string(),
            old.beol.len().to_string(),
            old.voltage_domains.to_string(),
            old.count().to_string(),
        ],
        vec![
            "16 nm SoC".to_string(),
            new.modes.len().to_string(),
            new.pvt.len().to_string(),
            new.beol.len().to_string(),
            new.voltage_domains.to_string(),
            new.count().to_string(),
        ],
    ];
    print_table(
        "Corner super-explosion: analysis views to close",
        &["era", "modes", "PVT", "BEOL", "domains", "total views"],
        &rows,
    );
    let stack = BeolStack::n20();
    println!(
        "\nBEOL corners with per-multi-patterned-layer doubling: {} flat views",
        stack.flat_corner_count()
    );

    // Dominance pruning on a live MCMM run.
    let (lib_typ, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib_typ, "tiny", 2015);
    let cfg = LibConfig::default();
    let mk = |name: &str, pvt: PvtCorner, beol: BeolCorner| Scenario {
        name: name.to_string(),
        lib: Library::generate(&cfg, &pvt),
        beol,
        constraints: Constraints::single_clock(900.0),
    };
    let scenarios = vec![
        mk("slow_cold_RCw", PvtCorner::slow_cold(), BeolCorner::RcWorst),
        mk("slow_cold_Cw", PvtCorner::slow_cold(), BeolCorner::CWorst),
        mk("slow_hot_RCw", PvtCorner::slow_hot(), BeolCorner::RcWorst),
        mk("typ_typ", PvtCorner::typical(), BeolCorner::Typical),
        mk("fast_cold_Cb", PvtCorner::fast_cold(), BeolCorner::CBest),
    ];
    let merged = run_and_merge(&nl, &stack, &scenarios).expect("mcmm");
    let kept = prune_by_dominance(&merged, 3);
    println!(
        "\nMCMM dominance over {} endpoints:",
        merged.endpoints.len()
    );
    let mut dominance: Vec<(String, usize)> = merged.dominance().into_iter().collect();
    dominance.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (name, n) in dominance {
        println!("  {name}: worst-setup corner for {n} endpoints");
    }
    println!("retained after pruning (≥3 endpoints dominated): {kept:?}");
}
