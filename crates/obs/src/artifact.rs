//! Run artifacts: one schema-versioned JSON document per harness or
//! closure run, written next to the figure sidecars so `tcdiff` can
//! gate regressions between any two runs.
//!
//! A [`RunArtifact`] captures everything needed to attribute a
//! performance delta after the fact: the workload id, the config knobs
//! that shaped the run (`TC_PAR_THREADS`, `parallel_sta`,
//! `use_incremental`, …), wall clock, per-iteration records, the full
//! metrics [`Snapshot`], and any harness-specific extras (fingerprints,
//! speedups). The schema is versioned ([`RUN_ARTIFACT_SCHEMA_VERSION`])
//! so `tcdiff` can refuse cross-version comparisons instead of
//! producing nonsense deltas.

use crate::alloc::{self, MemStats};
use crate::export::Snapshot;
use crate::json::JsonValue;

/// Version of the artifact JSON layout. Bump on any field rename or
/// semantic change; `tcdiff` refuses to compare mismatched versions.
///
/// * v1 — workload/knobs/wall/iterations/extras/metrics.
/// * v2 — adds the `memory` section (counting-allocator totals, peak
///   heap, kernel VmHWM/VmRSS) and per-span `net_bytes`/`peak_bytes`
///   in the metrics snapshot.
pub const RUN_ARTIFACT_SCHEMA_VERSION: u64 = 2;

/// The `kind` discriminator artifacts carry so tools can tell them from
/// figure sidecars.
pub const RUN_ARTIFACT_KIND: &str = "tc.run_artifact";

/// A schema-versioned record of one run. Build with the fluent setters,
/// then render with [`to_json_value`](Self::to_json_value) /
/// [`render`](Self::render).
#[derive(Clone, Debug)]
pub struct RunArtifact {
    workload: String,
    knobs: Vec<(String, String)>,
    wall_ms: f64,
    iterations: Vec<JsonValue>,
    extras: Vec<(String, JsonValue)>,
    metrics: Option<Snapshot>,
    memory: Option<MemStats>,
}

impl RunArtifact {
    /// A fresh artifact for `workload`, pre-populated with the
    /// environment knobs every run shares (`TC_PAR_THREADS`, host
    /// parallelism).
    pub fn new(workload: impl Into<String>) -> Self {
        let mut a = RunArtifact {
            workload: workload.into(),
            knobs: Vec::new(),
            wall_ms: 0.0,
            iterations: Vec::new(),
            extras: Vec::new(),
            metrics: None,
            memory: None,
        };
        let threads = std::env::var("TC_PAR_THREADS").unwrap_or_else(|_| "unset".to_string());
        a = a.knob("TC_PAR_THREADS", threads);
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        a.knob("host_threads", host.to_string())
    }

    /// Records a config knob as a string (knobs are compared exactly by
    /// `tcdiff`, so two runs with different knobs fail fast).
    #[must_use]
    pub fn knob(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.knobs.push((name.into(), value.to_string()));
        self
    }

    /// Records the run's total wall clock, milliseconds.
    #[must_use]
    pub fn wall_ms(mut self, ms: f64) -> Self {
        self.wall_ms = ms;
        self
    }

    /// Appends one per-iteration record (any JSON shape).
    #[must_use]
    pub fn iteration(mut self, record: JsonValue) -> Self {
        self.iterations.push(record);
        self
    }

    /// Attaches a harness-specific extra field (fingerprints, speedups,
    /// workload dimensions).
    #[must_use]
    pub fn extra(mut self, name: impl Into<String>, value: JsonValue) -> Self {
        self.extras.push((name.into(), value));
        self
    }

    /// Embeds the metrics snapshot (typically `tc_obs::snapshot()`
    /// taken right after the run).
    #[must_use]
    pub fn metrics(mut self, snapshot: Snapshot) -> Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Embeds a memory section from explicit allocator stats.
    #[must_use]
    pub fn memory(mut self, stats: MemStats) -> Self {
        self.memory = Some(stats);
        self
    }

    /// Embeds a memory section sampled right now, if memory counting is
    /// on ([`crate::enable_memory`]); a no-op otherwise, so callers can
    /// chain it unconditionally.
    #[must_use]
    pub fn capture_memory(self) -> Self {
        if alloc::memory_enabled() {
            self.memory(alloc::memory_stats())
        } else {
            self
        }
    }

    /// The artifact as one JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let knobs = self
            .knobs
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::str(v)))
            .collect();
        let mut fields = vec![
            (
                "schema_version".to_string(),
                JsonValue::from(RUN_ARTIFACT_SCHEMA_VERSION),
            ),
            ("kind".to_string(), JsonValue::str(RUN_ARTIFACT_KIND)),
            ("workload".to_string(), JsonValue::str(&self.workload)),
            ("knobs".to_string(), JsonValue::Obj(knobs)),
            ("wall_ms".to_string(), JsonValue::from(self.wall_ms)),
            (
                "iterations".to_string(),
                JsonValue::Arr(self.iterations.clone()),
            ),
        ];
        for (k, v) in &self.extras {
            fields.push((k.clone(), v.clone()));
        }
        if let Some(m) = &self.memory {
            // All leaves carry memory-class suffixes (`_allocs`,
            // `_frees`, `_bytes`) so tcdiff tolerance-gates them —
            // allocator behaviour is never bit-stable across hosts.
            let mut mem = vec![
                ("total_allocs".to_string(), JsonValue::from(m.allocs)),
                ("total_frees".to_string(), JsonValue::from(m.frees)),
                (
                    "allocated_bytes".to_string(),
                    JsonValue::from(m.allocated_bytes),
                ),
                ("freed_bytes".to_string(), JsonValue::from(m.freed_bytes)),
                ("live_bytes".to_string(), JsonValue::from(m.live_bytes)),
                ("peak_heap_bytes".to_string(), JsonValue::from(m.peak_bytes)),
            ];
            mem.push((
                "vm_hwm_bytes".to_string(),
                alloc::vm_hwm_bytes().map_or(JsonValue::Null, JsonValue::from),
            ));
            mem.push((
                "vm_rss_bytes".to_string(),
                alloc::vm_rss_bytes().map_or(JsonValue::Null, JsonValue::from),
            ));
            fields.push(("memory".to_string(), JsonValue::Obj(mem)));
        }
        if let Some(snap) = &self.metrics {
            fields.push(("metrics".to_string(), snap.to_json_value()));
        }
        JsonValue::Obj(fields)
    }

    /// Compact JSON text of [`to_json_value`](Self::to_json_value).
    pub fn render(&self) -> String {
        self.to_json_value().render()
    }
}
