//! Extracted timing models (ETMs) for hierarchical closure.
//!
//! §4 Comment 3: "flat vs ETM-based/hierarchical analysis and
//! optimization … affect design schedule and QOR". A block owner closes
//! the block flat, then hands the integrator a *boundary model*: worst
//! input-to-register setup requirements, register-to-output delays, and
//! feedthrough arcs — so top-level analysis never re-traverses the
//! block's interior. The price is boundary pessimism: the ETM keeps one
//! worst number per boundary pin, where flat analysis sees each path.

// Cold boundary-model path: ETMs are extracted once per block and keyed
// by a handful of boundary nets, not per-arc hot state.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use tc_core::error::Result;
use tc_core::ids::NetId;
use tc_core::units::Ps;

use crate::analysis::Sta;
use crate::report::Endpoint;

/// The timing requirement an ETM publishes for one block input: data
/// must arrive at least `setup_to_clock` before the clock edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InputRequirement {
    /// Worst interior setup requirement referenced to the clock edge, ps
    /// (i.e. required arrival = period − this).
    pub setup_to_clock: Ps,
    /// Depth of the interior path behind the requirement.
    pub depth: usize,
}

/// The timing an ETM publishes for one block output: valid
/// `clock_to_output` after the clock edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutputDelay {
    /// Worst clock-to-output delay, ps.
    pub clock_to_output: Ps,
    /// Output slew, ps.
    pub slew: f64,
}

/// An extracted timing model of a closed block.
#[derive(Clone, Debug, Default)]
pub struct Etm {
    /// Block name.
    pub name: String,
    /// Clock period the block was characterized at.
    pub period: Ps,
    /// Per-input requirements (keyed by the block's input net).
    pub inputs: HashMap<NetId, InputRequirement>,
    /// Per-output delays (keyed by the block's output net).
    pub outputs: HashMap<NetId, OutputDelay>,
}

impl Etm {
    /// Extracts an ETM from a block by running its STA and folding the
    /// *input-launched* interior endpoints to the boundary.
    ///
    /// Only endpoints whose worst path starts at a primary input
    /// constrain the boundary; purely internal register-to-register
    /// paths are the block owner's problem and do not leak into the
    /// model. The extraction publishes one worst requirement per input
    /// (the standard single-number ETM pessimism).
    ///
    /// # Errors
    ///
    /// Propagates STA failures.
    pub fn extract(sta: &Sta<'_>, name: impl Into<String>) -> Result<Etm> {
        let report = sta.run()?;
        let period = report.period;

        // Input requirements need *input-launched* path visibility, but
        // GBA keeps only the single worst arrival per node — usually a
        // register-launched one. Re-run with the input arrival inflated
        // to the full period so input paths dominate wherever they
        // reach; the assumed arrival cancels out of the published
        // requirement (slack = required − (input_delay + interior), so
        // requirement = period − slack − input_delay is
        // arrival-independent).
        let mut boosted = sta.cons.clone();
        boosted.input_delay = period;
        let sta_boost = Sta {
            cons: &boosted,
            ..sta.clone()
        };
        let boost_report = sta_boost.run()?;
        let paths = crate::pba::worst_paths(&sta_boost, boost_report.endpoints.len())?;
        let mut worst_req: Option<InputRequirement> = None;
        for p in &paths {
            if p.launch_flop.is_some() {
                continue; // internal reg-to-reg: not a boundary constraint
            }
            let Endpoint::FlopD(_) = p.endpoint else {
                continue;
            };
            let ep = boost_report
                .endpoints
                .iter()
                .find(|e| e.endpoint == p.endpoint)
                .expect("path endpoint exists in report");
            let cand = InputRequirement {
                setup_to_clock: Ps::new(
                    period.value() - (boosted.input_delay.value() + ep.setup_slack.value()),
                ),
                depth: ep.depth,
            };
            if worst_req
                .map(|w| cand.setup_to_clock > w.setup_to_clock)
                .unwrap_or(true)
            {
                worst_req = Some(cand);
            }
        }

        let mut inputs = HashMap::new();
        if let Some(req) = worst_req {
            for &pi in sta.nl.primary_inputs() {
                let net = sta.nl.net(pi);
                if sta.cons.clocks.iter().any(|c| c.name == net.name) {
                    continue;
                }
                inputs.insert(pi, req);
            }
        }

        let mut outputs = HashMap::new();
        for e in &report.endpoints {
            let Endpoint::Output(net) = e.endpoint else {
                continue;
            };
            outputs.insert(
                net,
                OutputDelay {
                    clock_to_output: e.arrival,
                    slew: e.data_slew,
                },
            );
        }

        Ok(Etm {
            name: name.into(),
            period,
            inputs,
            outputs,
        })
    }

    /// Checks a top-level arrival against an input's published
    /// requirement; returns the slack.
    pub fn input_slack(&self, input: NetId, arrival: Ps) -> Option<Ps> {
        self.inputs
            .get(&input)
            .map(|r| Ps::new(self.period.value() - r.setup_to_clock.value()) - arrival)
    }

    /// The worst input requirement across the boundary (the block's
    /// headline constraint in the integrator's budget sheet).
    pub fn worst_input_requirement(&self) -> Option<Ps> {
        self.inputs
            .values()
            .map(|r| r.setup_to_clock)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: Ps| a.max(x))))
    }

    /// The worst clock-to-output across the boundary.
    pub fn worst_output_delay(&self) -> Option<Ps> {
        self.outputs
            .values()
            .map(|o| o.clock_to_output)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: Ps| a.max(x))))
    }
}

/// A two-block budget check at the top level: block A's output feeds
/// block B's input through a top-level wire. Returns the interface
/// slack under the two ETMs — the hierarchical version of a flat
/// reg-to-reg check.
pub fn interface_slack(
    a: &Etm,
    a_output: NetId,
    wire_delay: Ps,
    b: &Etm,
    b_input: NetId,
) -> Option<Ps> {
    let out = a.outputs.get(&a_output)?;
    let req = b.inputs.get(&b_input)?;
    // Data leaves A at c2out, travels the wire, and must arrive at B no
    // later than period − setup_to_clock.
    let arrival = out.clock_to_output + wire_delay;
    Some(Ps::new(b.period.value() - req.setup_to_clock.value()) - arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_interconnect::BeolStack;
    use tc_liberty::{LibConfig, Library, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    use crate::constraints::Constraints;

    fn block(seed: u64) -> (Library, BeolStack, tc_netlist::Netlist) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        (lib, BeolStack::n20(), nl)
    }

    #[test]
    fn extraction_covers_the_boundary() {
        let (lib, stack, nl) = block(3);
        let cons = Constraints::single_clock(1_200.0);
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        let etm = Etm::extract(&sta, "blk").unwrap();
        // All data inputs published; clock excluded.
        assert_eq!(etm.inputs.len(), nl.primary_inputs().len() - 1);
        assert_eq!(etm.outputs.len(), nl.primary_outputs().count());
        assert!(etm.worst_input_requirement().is_some());
        assert!(etm.worst_output_delay().unwrap().value() > 0.0);
    }

    #[test]
    fn etm_check_is_conservative_vs_flat() {
        // The ETM folds every input-launched endpoint to one number per
        // input: its slack at a given boundary arrival must not be more
        // optimistic than the flat slack of the worst *input-launched*
        // endpoint at the same arrival. Identify those endpoints the way
        // the extractor does (boosted input delay) and compare in the
        // boosted run itself, where attribution is exact.
        let (lib, stack, nl) = block(5);
        let mut cons = Constraints::single_clock(1_200.0);
        cons.input_delay = Ps::new(1_200.0);
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        let flat = sta.run().unwrap();
        let paths = crate::pba::worst_paths(&sta, flat.endpoints.len()).unwrap();
        let flat_worst_input_launched = paths
            .iter()
            .filter(|p| p.launch_flop.is_none() && matches!(p.endpoint, Endpoint::FlopD(_)))
            .map(|p| p.slack)
            .fold(Ps::new(f64::INFINITY), Ps::min);

        let etm = Etm::extract(&sta, "blk").unwrap();
        let pi = nl.primary_inputs()[1]; // a data input
        let etm_slack = etm
            .input_slack(pi, cons.input_delay)
            .expect("published input");
        assert!(
            etm_slack <= flat_worst_input_launched + Ps::new(1e-6),
            "ETM {} must be ≤ flat {}",
            etm_slack,
            flat_worst_input_launched
        );
        // And within a whisker of it: the fold is tight at the worst pin.
        assert!(
            (etm_slack - flat_worst_input_launched).abs() < Ps::new(1.0),
            "fold should be tight: {} vs {}",
            etm_slack,
            flat_worst_input_launched
        );
    }

    #[test]
    fn interface_budget_between_two_blocks() {
        let (lib, stack, nl_a) = block(7);
        let nl_b = generate(&lib, BenchProfile::tiny(), 8).unwrap();
        let cons = Constraints::single_clock(1_500.0);
        let etm_a = Etm::extract(&Sta::new(&nl_a, &lib, &stack, &cons), "a").unwrap();
        let etm_b = Etm::extract(&Sta::new(&nl_b, &lib, &stack, &cons), "b").unwrap();

        let a_out = nl_a.primary_outputs().next().unwrap();
        let b_in = nl_b.primary_inputs()[1];
        let short = interface_slack(&etm_a, a_out, Ps::new(10.0), &etm_b, b_in).unwrap();
        let long = interface_slack(&etm_a, a_out, Ps::new(400.0), &etm_b, b_in).unwrap();
        assert!(short > long, "wire delay must eat interface slack");
        assert!((short - long - Ps::new(-390.0).abs()).value().abs() < 1e-6);
    }

    #[test]
    fn missing_pins_return_none() {
        let (lib, stack, nl) = block(9);
        let cons = Constraints::single_clock(1_200.0);
        let etm = Etm::extract(&Sta::new(&nl, &lib, &stack, &cons), "blk").unwrap();
        assert!(etm.input_slack(NetId::new(99_999), Ps::new(0.0)).is_none());
    }
}
