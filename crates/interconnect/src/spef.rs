//! SPEF-style parasitics exchange, with the *sensitivity* extension.
//!
//! §3.1: "Another flirtation, Sensitivity SPEF (SSPEF) for statistical
//! modeling of interconnect, seems to have recently dropped by the
//! wayside, leaving BEOL variations as a major hole in signoff
//! enablement"; §4 predicts "Statistical SPEF or similar will be
//! revived (cf. 'BEOL as first-class citizen')". This module implements
//! that revival for our stack: each net's total R/C is written together
//! with its *per-layer sensitivity coefficients*, so a downstream tool
//! can re-evaluate the parasitics at any BEOL corner or Monte Carlo
//! sample without re-extraction.
//!
//! Format (a compact SPEF-inspired subset, one `*D_NET` block per net):
//!
//! ```text
//! *SPEF tc-interconnect sensitivity
//! *D_NET n42 R 0.48 C 12.75 LAYER 5
//! *SENS R M6 1.0
//! *SENS C M6 1.0
//! *END
//! ```

use std::fmt::Write as _;

use tc_core::error::{Error, Result};

use crate::beol::{BeolSample, BeolStack};
use crate::estimate::WireModel;

/// Parasitics of one net with its variation sensitivities.
#[derive(Clone, Debug, PartialEq)]
pub struct NetParasitics {
    /// Net name.
    pub name: String,
    /// Total resistance at the typical corner, kΩ.
    pub r_total: f64,
    /// Total wire capacitance (ground + coupling) at typical, fF.
    pub c_total: f64,
    /// Stack layer index the net is routed on.
    pub layer: usize,
    /// Per-layer sensitivity of R: dR/R per unit layer R factor, as
    /// `(layer, sensitivity)` pairs sorted by layer index. For
    /// single-layer routes this is 1.0 on the route layer. A sorted
    /// slice beats a hash map here: the hot consumer ([`at_sample`])
    /// only ever iterates, serialization wants layer order anyway, and
    /// real nets touch a handful of layers at most.
    ///
    /// [`at_sample`]: NetParasitics::at_sample
    pub r_sens: Vec<(usize, f64)>,
    /// Per-layer sensitivity of C, same representation as `r_sens`.
    pub c_sens: Vec<(usize, f64)>,
}

impl NetParasitics {
    /// Extracts one net's parasitics from a wire model.
    pub fn extract(name: impl Into<String>, wm: &WireModel, stack: &BeolStack) -> Self {
        let layer = stack.layer(wm.layer);
        let (fr, fcg, fcc) = wm.ndr.factors();
        let r_total = layer.r_per_um * fr * wm.length_um;
        let c_total = (layer.cg_per_um * fcg + layer.cc_per_um * fcc) * wm.length_um;
        let r_sens = vec![(wm.layer, 1.0)];
        let c_sens = vec![(wm.layer, 1.0)];
        NetParasitics {
            name: name.into(),
            r_total,
            c_total,
            layer: wm.layer,
            r_sens,
            c_sens,
        }
    }

    /// Re-evaluates the parasitics under a per-layer Monte Carlo sample
    /// using the stored sensitivities — the SSPEF use case.
    pub fn at_sample(&self, sample: &BeolSample) -> (f64, f64) {
        let r_factor: f64 = self
            .r_sens
            .iter()
            .map(|&(l, s)| 1.0 + s * (sample.r[l] - 1.0))
            .product();
        let c_factor: f64 = self
            .c_sens
            .iter()
            .map(|&(l, s)| 1.0 + s * (sample.c[l] - 1.0))
            .product();
        (self.r_total * r_factor, self.c_total * c_factor)
    }
}

/// Serializes a set of net parasitics to sensitivity-SPEF text.
pub fn write_spef(nets: &[NetParasitics], stack: &BeolStack) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF tc-interconnect sensitivity");
    let _ = writeln!(out, "*T_UNIT ps  *C_UNIT ff  *R_UNIT kohm");
    for n in nets {
        let _ = writeln!(
            out,
            "*D_NET {} R {:.6} C {:.6} LAYER {}",
            n.name, n.r_total, n.c_total, n.layer
        );
        // The pairs are kept sorted by layer, so emission order is
        // deterministic without a sort.
        for &(l, s) in &n.r_sens {
            let _ = writeln!(out, "*SENS R {} {:.4}", stack.layer(l).name, s);
        }
        for &(l, s) in &n.c_sens {
            let _ = writeln!(out, "*SENS C {} {:.4}", stack.layer(l).name, s);
        }
        let _ = writeln!(out, "*END");
    }
    out
}

/// Parses the sensitivity-SPEF subset written by [`write_spef`] from any
/// buffered reader, one line at a time — a multi-million-net parasitics
/// file is never materialized in memory as a whole.
///
/// Numeric fields are validated at parse time: totals must be finite and
/// non-negative, sensitivities finite — a `NaN` or negative cap here
/// would silently poison every slack merge downstream.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on malformed records, unknown layer
/// names, non-finite/negative values, or I/O failures (wrapped). Every
/// error names the offending line number.
pub fn parse_spef_from<R: std::io::BufRead>(
    mut reader: R,
    stack: &BeolStack,
) -> Result<Vec<NetParasitics>> {
    let mut nets = Vec::new();
    let mut cur: Option<NetParasitics> = None;
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| Error::invalid_input(format!("line {}: read: {e}", lineno + 1)))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let layer_idx = |name: &str| -> Result<usize> {
            stack
                .layers()
                .iter()
                .position(|l| l.name == name)
                .ok_or_else(|| Error::invalid_input(format!("line {lineno}: unknown layer {name}")))
        };
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("*D_NET ") {
            let tok: Vec<&str> = rest.split_whitespace().collect();
            if tok.len() != 7 || tok[1] != "R" || tok[3] != "C" || tok[5] != "LAYER" {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: bad D_NET record: {l}"
                )));
            }
            // Totals must be finite and non-negative: f64::parse happily
            // accepts `NaN`, `inf` and `-3`, none of which is a physical
            // R or C.
            let parse_total = |what: &str, s: &str| -> Result<f64> {
                let v = s.parse::<f64>().map_err(|e| {
                    Error::invalid_input(format!("line {lineno}: bad number {s}: {e}"))
                })?;
                if !v.is_finite() || v < 0.0 {
                    return Err(Error::invalid_input(format!(
                        "line {lineno}: {what} must be finite and non-negative, got {s}"
                    )));
                }
                Ok(v)
            };
            cur = Some(NetParasitics {
                name: tok[0].to_string(),
                r_total: parse_total("R", tok[2])?,
                c_total: parse_total("C", tok[4])?,
                layer: {
                    // Validate against the stack here: an out-of-range
                    // index would otherwise surface later as an indexing
                    // panic in `at_sample` or `write_spef`.
                    let layer: usize = tok[6].parse().map_err(|e| {
                        Error::invalid_input(format!("line {lineno}: bad layer index: {e}"))
                    })?;
                    if layer >= stack.layers().len() {
                        return Err(Error::invalid_input(format!(
                            "line {lineno}: layer index {layer} out of range for a {}-layer \
                             stack: {l}",
                            stack.layers().len()
                        )));
                    }
                    layer
                },
                r_sens: Vec::new(),
                c_sens: Vec::new(),
            });
        } else if let Some(rest) = l.strip_prefix("*SENS ") {
            let tok: Vec<&str> = rest.split_whitespace().collect();
            if tok.len() != 3 {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: bad SENS record: {l}"
                )));
            }
            let net = cur.as_mut().ok_or_else(|| {
                Error::invalid_input(format!("line {lineno}: SENS outside D_NET"))
            })?;
            let layer = layer_idx(tok[1])?;
            let s = tok[2].parse::<f64>().map_err(|e| {
                Error::invalid_input(format!("line {lineno}: bad sensitivity: {e}"))
            })?;
            if !s.is_finite() {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: sensitivity must be finite, got {}",
                    tok[2]
                )));
            }
            match tok[0] {
                "R" => {
                    upsert(&mut net.r_sens, layer, s);
                }
                "C" => {
                    upsert(&mut net.c_sens, layer, s);
                }
                other => {
                    return Err(Error::invalid_input(format!(
                        "line {lineno}: bad SENS kind {other}"
                    )));
                }
            }
        } else if l == "*END" {
            nets.push(cur.take().ok_or_else(|| {
                Error::invalid_input(format!("line {lineno}: END without D_NET"))
            })?);
        }
    }
    if cur.is_some() {
        return Err(Error::invalid_input(format!(
            "line {lineno}: unterminated D_NET block"
        )));
    }
    Ok(nets)
}

/// Inserts `(layer, s)` into a layer-sorted pair list, replacing the
/// entry if the layer is already present (a repeated `*SENS` line for
/// the same layer means the later value wins, matching map semantics).
fn upsert(pairs: &mut Vec<(usize, f64)>, layer: usize, s: f64) {
    match pairs.binary_search_by_key(&layer, |&(l, _)| l) {
        Ok(i) => pairs[i].1 = s,
        Err(i) => pairs.insert(i, (layer, s)),
    }
}

/// Parses the sensitivity-SPEF subset written by [`write_spef`]
/// (in-memory convenience wrapper around [`parse_spef_from`]).
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on malformed records or unknown layer
/// names.
pub fn parse_spef(text: &str, stack: &BeolStack) -> Result<Vec<NetParasitics>> {
    parse_spef_from(text.as_bytes(), stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::NdrClass;
    use tc_core::rng::Rng;

    fn stack() -> BeolStack {
        BeolStack::n20()
    }

    fn sample_nets(stack: &BeolStack) -> Vec<NetParasitics> {
        [
            (20.0, NdrClass::Default),
            (150.0, NdrClass::Default),
            (400.0, NdrClass::DoubleWidthSpacing),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(len, ndr))| {
            let wm = WireModel::from_length(len).with_ndr(ndr);
            NetParasitics::extract(format!("n{i}"), &wm, stack)
        })
        .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let stack = stack();
        let nets = sample_nets(&stack);
        let text = write_spef(&nets, &stack);
        assert!(text.contains("*D_NET n0"));
        let parsed = parse_spef(&text, &stack).unwrap();
        assert_eq!(parsed.len(), nets.len());
        for (a, b) in nets.iter().zip(&parsed) {
            assert_eq!(a.name, b.name);
            assert!((a.r_total - b.r_total).abs() < 1e-6);
            assert!((a.c_total - b.c_total).abs() < 1e-6);
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.r_sens, b.r_sens);
        }
    }

    #[test]
    fn sensitivities_reproduce_monte_carlo_reevaluation() {
        // The SSPEF promise: a consumer can re-evaluate parasitics at a
        // sample without the extractor. Cross-check against WireModel's
        // own sampled timing inputs.
        let stack = stack();
        let wm = WireModel::from_length(150.0);
        let net = NetParasitics::extract("n", &wm, &stack);
        let mut rng = Rng::seed_from(17);
        for _ in 0..20 {
            let smp = stack.sample(&mut rng);
            let (r, c) = net.at_sample(&smp);
            let want_r = net.r_total * smp.r[wm.layer];
            let want_c = net.c_total * smp.c[wm.layer];
            assert!((r - want_r).abs() < 1e-9);
            assert!((c - want_c).abs() < 1e-9);
        }
    }

    #[test]
    fn parser_rejects_malformed_records() {
        let stack = stack();
        assert!(parse_spef("*D_NET bogus R x C 1 LAYER 2\n*END", &stack).is_err());
        assert!(parse_spef("*SENS R M1 1.0", &stack).is_err());
        assert!(parse_spef("*D_NET n R 1 C 1 LAYER 1\n*SENS R M99 1.0\n*END", &stack).is_err());
        assert!(parse_spef("*D_NET n R 1 C 1 LAYER 1\n", &stack).is_err());
    }

    #[test]
    fn parser_rejects_out_of_range_layer_index() {
        // A syntactically valid LAYER with an index past the stack must
        // fail at parse time, not as a later indexing panic when the
        // parasitics are re-evaluated at a sample.
        let stack = stack();
        let bad = "*D_NET n R 1 C 1 LAYER 99\n*END";
        let err = parse_spef(bad, &stack).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // The first in-range index and the last one parse fine.
        let last = stack.layers().len() - 1;
        let good = format!("*D_NET n R 1 C 1 LAYER {last}\n*END");
        assert_eq!(parse_spef(&good, &stack).unwrap()[0].layer, last);
    }

    #[test]
    fn parser_rejects_non_finite_and_negative_values() {
        // `f64::parse` happily accepts `NaN`, `inf`, and negatives — any
        // of which would poison every downstream slack merge.
        let stack = stack();
        for bad in [
            "*D_NET n R NaN C 1 LAYER 1\n*END",
            "*D_NET n R inf C 1 LAYER 1\n*END",
            "*D_NET n R 1 C -3.0 LAYER 1\n*END",
            "*D_NET n R 1 C 1e999 LAYER 1\n*END",
            "*D_NET n R 1 C 1 LAYER 1\n*SENS R M1 NaN\n*END",
        ] {
            let err = parse_spef(bad, &stack).unwrap_err().to_string();
            assert!(err.contains("line "), "no line number in: {err}");
        }
    }

    #[test]
    fn parser_errors_carry_line_numbers() {
        let stack = stack();
        let bad = "*D_NET n R 1 C 1 LAYER 1\n*SENS R M99 1.0\n*END";
        let err = parse_spef(bad, &stack).unwrap_err().to_string();
        assert!(err.contains("line 2"), "no line number in: {err}");
    }

    #[test]
    fn parser_rejects_truncated_input() {
        // Truncation mid-block (e.g. an interrupted write) is an error,
        // and truncation mid-record never panics.
        let stack = stack();
        let nets = sample_nets(&stack);
        let text = write_spef(&nets, &stack);
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            // Every prefix must either parse (clean block boundary) or
            // error — the parser must not panic on any of them.
            let _ = parse_spef(&text[..cut], &stack);
        }
        // A prefix ending inside a block is specifically an error.
        let inside = text.find("*SENS").unwrap() + 3;
        assert!(parse_spef(&text[..inside], &stack).is_err());
    }

    #[test]
    fn streaming_parse_matches_in_memory_parse() {
        let stack = stack();
        let nets = sample_nets(&stack);
        let text = write_spef(&nets, &stack);
        // A deliberately tiny buffer forces many refills mid-record.
        let reader = std::io::BufReader::with_capacity(7, text.as_bytes());
        let streamed = parse_spef_from(reader, &stack).unwrap();
        assert_eq!(streamed, parse_spef(&text, &stack).unwrap());
    }

    #[test]
    fn ndr_nets_carry_their_rule_in_the_totals() {
        let stack = stack();
        let base = NetParasitics::extract("a", &WireModel::from_length(400.0), &stack);
        let ndr = NetParasitics::extract(
            "b",
            &WireModel::from_length(400.0).with_ndr(NdrClass::DoubleWidthSpacing),
            &stack,
        );
        assert!(ndr.r_total < 0.6 * base.r_total);
        assert!(ndr.c_total < base.c_total, "spacing cuts coupling");
    }
}
