#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-par — deterministic scoped parallelism
//!
//! The corner super-explosion (paper §2.3) makes signoff cost
//! multiplicative in scenarios, yet every scenario, Monte Carlo sample
//! and levelization rank is independent of its siblings. This crate is
//! the workspace's one way to exploit that: a std-only scoped thread
//! pool whose primitives are *deterministic by construction* —
//!
//! * work is claimed through an atomic cursor (cheap dynamic load
//!   balancing), but **results are merged in item-index order, never
//!   completion order**;
//! * the item → work mapping never depends on the worker count, so a
//!   run at `TC_PAR_THREADS=8` is bit-identical to `TC_PAR_THREADS=1`
//!   (the sequential reference path);
//! * worker panics propagate to the submitting thread after the scope
//!   joins.
//!
//! Observability: each pool scope tallies `par.tasks` (items executed)
//! and `par.steal_idle_ms` (summed worker idle time), and workers
//! inherit the submitting thread's open span path so `tc_obs` spans
//! opened inside tasks keep nesting under the caller's tree. When the
//! flight recorder is armed ([`tc_obs::enable_trace`]), every claimed
//! item (and every chunk in [`Pool::chunked_for_each`]) emits a
//! `par.task` begin/end pair into the per-thread trace ring, so a
//! Chrome-trace export shows exactly how work interleaved across
//! workers — at a cost of one relaxed atomic load when tracing is off.
//!
//! # Examples
//!
//! ```
//! use tc_par::Pool;
//!
//! let xs = [1u64, 2, 3, 4];
//! let doubled = Pool::new(4).scope_map(&xs, |_, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6, 8]); // index order, always
//! ```

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count
/// ([`Pool::from_env`]). Unset or unparsable values fall back to
/// [`std::thread::available_parallelism`].
pub const THREADS_ENV: &str = "TC_PAR_THREADS";

/// A scoped thread pool configuration.
///
/// `Pool` is a plain value (no threads are kept alive between calls):
/// each [`scope_map`](Pool::scope_map) / [`chunked_for_each`](Pool::chunked_for_each)
/// call spawns scoped workers, drains the items, joins, and returns.
/// This keeps the type `Copy`, the borrows simple (workers may borrow
/// the caller's stack), and the determinism contract auditable: there
/// is no hidden queue whose drain order could leak into results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    /// Tests and benches use this to pin thread counts without touching
    /// the process environment.
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The single-worker pool: every primitive runs inline on the
    /// calling thread — the sequential reference path parallel runs
    /// must be bit-identical to.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// Worker count from `TC_PAR_THREADS`, defaulting to the host's
    /// available parallelism.
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let workers = from_var.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Pool::new(workers)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on the pool, returning results in item
    /// order: `out[i] == f(i, &items[i])` regardless of the worker
    /// count or claim interleaving.
    ///
    /// Items are claimed one at a time through an atomic cursor, so
    /// expensive items load-balance dynamically. With one effective
    /// worker (or one item) the map runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have joined.
    pub fn scope_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.workers.min(n) <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let per_worker = self.run_workers(n, |cursor| {
            let mut local = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let _task = tc_obs::trace_scope("par.task");
                local.push((i, f(i, &items[i])));
            }
            local
        });
        merge_indexed(n, per_worker)
    }

    /// Splits `0..len` into fixed-size chunks and maps `f` over the
    /// chunk list on the pool, returning per-chunk results in chunk
    /// order. The chunk boundaries depend only on `(len, chunk)` —
    /// never on the worker count — which is what lets per-chunk seeded
    /// RNG streams reproduce bit-identically at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`; re-raises worker panics.
    pub fn chunked_map<R, F>(&self, len: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(len, chunk);
        self.scope_map(&ranges, |i, r| f(i, r.clone()))
    }

    /// Splits `data` into fixed-size chunks and runs `f(chunk_index,
    /// chunk)` for each on the pool. Chunks are disjoint `&mut` slices,
    /// so any interleaving writes the same bytes — results depend only
    /// on `(data.len(), chunk)`, not the worker count.
    ///
    /// Chunks are dealt round-robin to workers up front (no cursor):
    /// the borrow checker gets disjointness for free and the fixed
    /// deal keeps scheduling noise out of the obs counters.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`; re-raises worker panics.
    pub fn chunked_for_each<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = data.len().div_ceil(chunk);
        let workers = self.workers.min(n_chunks);
        if workers <= 1 {
            for (i, c) in data.chunks_mut(chunk).enumerate() {
                f(i, c);
            }
            return;
        }
        // Deal chunk i to worker i % workers, preserving indices.
        let mut deal: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            deal[i % workers].push((i, c));
        }
        let scope_start = Instant::now();
        let parent = tc_obs::current_span_path();
        let busy: Vec<Duration> = thread::scope(|s| {
            let handles: Vec<_> = deal
                .into_iter()
                .enumerate()
                .map(|(w, work)| {
                    let parent = parent.as_deref();
                    let f = &f;
                    spawn_worker(s, w, move || {
                        let _ctx = tc_obs::span_parent(parent);
                        let start = Instant::now();
                        for (i, c) in work {
                            let _task = tc_obs::trace_scope("par.task");
                            f(i, c);
                        }
                        start.elapsed()
                    })
                })
                .collect();
            handles.into_iter().map(join_worker).collect()
        });
        record_scope(n_chunks, workers, scope_start.elapsed(), &busy);
    }

    /// Spawns `self.workers` scoped workers, each running `body` with
    /// the shared claim cursor, and returns their outputs (per worker,
    /// join order). Records the `par.tasks` / `par.steal_idle_ms`
    /// counters for the scope.
    fn run_workers<R, B>(&self, n: usize, body: B) -> Vec<R>
    where
        R: Send,
        B: Fn(&AtomicUsize) -> R + Sync,
    {
        let workers = self.workers.min(n);
        let cursor = AtomicUsize::new(0);
        let parent = tc_obs::current_span_path();
        let scope_start = Instant::now();
        let mut busy = Vec::with_capacity(workers);
        let outputs: Vec<R> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let body = &body;
                    let parent = parent.as_deref();
                    spawn_worker(s, w, move || {
                        let _ctx = tc_obs::span_parent(parent);
                        let start = Instant::now();
                        let out = body(cursor);
                        (out, start.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (out, elapsed) = join_worker(h);
                    busy.push(elapsed);
                    out
                })
                .collect()
        });
        record_scope(n, workers, scope_start.elapsed(), &busy);
        outputs
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Spawns scoped worker `w` under the name `tc-par-<w>`, so flight-
/// recorder traces (and debuggers) show a stable lane per worker
/// instead of anonymous thread ids.
fn spawn_worker<'scope, 'env, R: Send + 'scope>(
    s: &'scope thread::Scope<'scope, 'env>,
    w: usize,
    body: impl FnOnce() -> R + Send + 'scope,
) -> thread::ScopedJoinHandle<'scope, R> {
    thread::Builder::new()
        .name(format!("tc-par-{w}"))
        .spawn_scoped(s, body)
        .expect("spawn tc-par worker")
}

/// Joins one worker, re-raising its panic on the calling thread.
fn join_worker<R>(handle: thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Flattens per-worker `(index, result)` batches into index order.
fn merge_indexed<R>(n: usize, per_worker: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for batch in per_worker {
        for (i, r) in batch {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// The fixed chunking of `0..len`: `ceil(len / chunk)` ranges, all of
/// size `chunk` except a shorter tail.
fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

/// Tallies one pool scope: items executed and summed worker idle time
/// (scope wall clock minus each worker's busy time — the price of load
/// imbalance and spawn/join overhead).
fn record_scope(tasks: usize, workers: usize, wall: Duration, busy: &[Duration]) {
    tc_obs::counter("par.tasks").add(tasks as u64);
    let idle_ms: u64 = (0..workers)
        .map(|w| {
            wall.saturating_sub(busy.get(w).copied().unwrap_or_default())
                .as_millis() as u64
        })
        .sum();
    tc_obs::counter("par.steal_idle_ms").add(idle_ms);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_map_returns_index_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Pool::new(workers).scope_map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn scope_map_passes_matching_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = Pool::new(4).scope_map(&items, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(Pool::new(8).scope_map(&items, |_, &x| x).is_empty());
        Pool::new(8).chunked_for_each(&mut Vec::<u32>::new(), 16, |_, _| {});
    }

    #[test]
    fn chunked_map_boundaries_ignore_worker_count() {
        let a = Pool::new(1).chunked_map(10, 4, |i, r| (i, r));
        let b = Pool::new(7).chunked_map(10, 4, |i, r| (i, r));
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 0..4), (1, 4..8), (2, 8..10)]);
    }

    #[test]
    fn chunked_for_each_writes_every_element_once() {
        let mut data = vec![0u64; 1000];
        Pool::new(4).chunked_for_each(&mut data, 64, |ci, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + k) as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn every_item_claimed_exactly_once_under_contention() {
        let counts: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        Pool::new(8).scope_map(&counts, |_, c| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = panic::catch_unwind(|| {
            Pool::new(4).scope_map(&items, |i, _| {
                assert!(i != 17, "boom");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn from_env_reads_the_knob() {
        // Only observe the variable; never set it (tests share the
        // process environment).
        let pool = Pool::from_env();
        match std::env::var(THREADS_ENV) {
            Ok(v) => {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        assert_eq!(pool.workers(), n);
                    }
                }
            }
            Err(_) => assert!(pool.workers() >= 1),
        }
    }

    #[test]
    fn pool_scopes_record_task_and_idle_counters() {
        tc_obs::enable();
        let before = tc_obs::snapshot().counter("par.tasks");
        let items: Vec<u32> = (0..100).collect();
        Pool::new(4).scope_map(&items, |_, &x| x + 1);
        let after = tc_obs::snapshot().counter("par.tasks");
        assert!(after >= before + 100, "before {before} after {after}");
    }

    #[test]
    fn workers_inherit_the_submitters_span_path() {
        tc_obs::enable();
        let items: Vec<u32> = (0..32).collect();
        {
            let _outer = tc_obs::span("t_par.outer");
            Pool::new(4).scope_map(&items, |_, _| {
                let _inner = tc_obs::span("t_par.task");
            });
        }
        let snap = tc_obs::snapshot();
        let nested = snap.span("t_par.outer/t_par.task").expect("nested path");
        assert_eq!(nested.count, 32);
        assert!(snap.span("t_par.task").is_none(), "no orphan root span");
    }
}
