//! Hostile-input tests for [`JsonValue::parse`], pinning the number and
//! string handling bugs the fuzz harness found: overflow-to-infinity
//! literals, leading-plus/lone-minus tokens, and unpaired surrogate
//! escapes must all produce positioned errors (or replacement chars),
//! never `Ok(inf)` and never a panic.

use tc_obs::JsonValue;

/// Every error message must carry a byte offset — a bare "invalid
/// number" gives the operator nothing to act on in a megabyte sidecar.
fn assert_positioned(input: &str) {
    let err = JsonValue::parse(input).unwrap_err();
    assert!(
        err.contains("byte "),
        "no byte offset in `{err}` for {input:?}"
    );
}

#[test]
fn overflowing_literals_are_errors_not_inf() {
    for input in ["1e999", "-1e999", "[1e309]", "1e+999", "12e99999"] {
        let res = JsonValue::parse(input);
        assert!(res.is_err(), "{input:?} parsed as {res:?}");
        assert_positioned(input);
    }
    // The largest finite literal still parses.
    let v = JsonValue::parse("1.7976931348623157e308").unwrap();
    assert!(matches!(v, JsonValue::Num(x) if x.is_finite()));
}

#[test]
fn malformed_number_tokens_are_positioned_errors() {
    for input in ["+1", "-", "[-]", "1e", "1.2.3", "--5", "0x10", "NaN", "inf"] {
        let res = JsonValue::parse(input);
        assert!(res.is_err(), "{input:?} parsed as {res:?}");
        assert_positioned(input);
    }
}

#[test]
fn unpaired_surrogates_do_not_panic() {
    // High surrogate followed by a non-low escape used to underflow in
    // the pair arithmetic (debug-build panic). Now both halves decode to
    // replacement characters.
    let v = JsonValue::parse(r#""\ud800A""#).unwrap();
    assert_eq!(v, JsonValue::Str("\u{FFFD}A".to_string()));
    // Lone high surrogate at end of string.
    let v = JsonValue::parse(r#""\ud800""#).unwrap();
    assert_eq!(v, JsonValue::Str("\u{FFFD}".to_string()));
    // Lone low surrogate.
    let v = JsonValue::parse(r#""\udc00""#).unwrap();
    assert_eq!(v, JsonValue::Str("\u{FFFD}".to_string()));
    // A proper pair still decodes.
    let v = JsonValue::parse(r#""😀""#).unwrap();
    assert_eq!(v, JsonValue::Str("\u{1F600}".to_string()));
}

#[test]
fn truncated_strings_and_escapes_are_positioned_errors() {
    for input in ["\"abc", "\"abc\\", "\"\\u12", "\"\\u123", "\"a\\q\""] {
        assert_positioned(input);
    }
}

#[test]
fn duplicate_object_keys_are_positioned_errors() {
    // Lookup-by-name sees the first pair, iteration sees both — a
    // document with duplicate keys can never diff cleanly against
    // itself, so the parser refuses it.
    for input in [
        r#"{"a":1,"a":2}"#,
        r#"{"":9,"":""}"#,
        r#"{"k":{"x":1,"x":1}}"#,
    ] {
        let err = JsonValue::parse(input).unwrap_err();
        assert!(err.contains("duplicate key"), "got `{err}` for {input:?}");
        assert_positioned(input);
    }
    // Same key at different nesting levels is fine.
    JsonValue::parse(r#"{"a":{"a":1}}"#).unwrap();
}

#[test]
fn accepted_documents_render_to_a_fixpoint() {
    for input in [
        r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}}"#,
        "[0,1,2]",
        r#""\ud800A""#,
        "1e300",
        "-0.125",
    ] {
        let v = JsonValue::parse(input).unwrap();
        let r1 = v.render();
        let v2 = JsonValue::parse(&r1).unwrap_or_else(|e| panic!("reparse of {r1:?}: {e}"));
        assert_eq!(v2.render(), r1, "render not a fixpoint for {input:?}");
    }
}
