//! Workspace-wide error type.
//!
//! All public fallible functions in the `tc-*` crates return
//! [`Result<T>`](Result) with this [`Error`]. The variants are deliberately
//! coarse — this is a modeling/analysis library, and the useful payload is
//! the human-readable context string.
//!
//! # Examples
//!
//! ```
//! use tc_core::error::{Error, Result};
//!
//! fn checked_period(ps: f64) -> Result<f64> {
//!     if ps <= 0.0 {
//!         return Err(Error::invalid_input("clock period must be positive"));
//!     }
//!     Ok(ps)
//! }
//! assert!(checked_period(-1.0).is_err());
//! ```

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by every `tc-*` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A caller-supplied argument was rejected by validation.
    InvalidInput(String),
    /// A name or id did not resolve (unknown cell, net, clock, corner…).
    NotFound(String),
    /// A numerical procedure failed to converge (simulator Newton loop,
    /// AVS fixed point, bisection…).
    Convergence(String),
    /// An internal invariant was violated; indicates a bug in this library.
    Internal(String),
}

impl Error {
    /// Builds an [`Error::InvalidInput`] from any displayable context.
    pub fn invalid_input(msg: impl Into<String>) -> Self {
        Error::InvalidInput(msg.into())
    }

    /// Builds an [`Error::NotFound`] from any displayable context.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Builds an [`Error::Convergence`] from any displayable context.
    pub fn convergence(msg: impl Into<String>) -> Self {
        Error::Convergence(msg.into())
    }

    /// Builds an [`Error::Internal`] from any displayable context.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInput(m) => write!(f, "invalid input: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Convergence(m) => write!(f, "failed to converge: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_contextual() {
        let e = Error::invalid_input("negative load");
        assert_eq!(e.to_string(), "invalid input: negative load");
        let e = Error::convergence("newton at t=3ps");
        assert!(e.to_string().starts_with("failed to converge"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn works_with_question_mark() {
        fn inner() -> Result<()> {
            Err(Error::not_found("clock 'phi'"))
        }
        fn outer() -> Result<()> {
            inner()?;
            Ok(())
        }
        assert_eq!(outer(), Err(Error::not_found("clock 'phi'")));
    }
}
