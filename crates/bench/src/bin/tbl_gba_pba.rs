//! §1.3 — graph-based vs path-based analysis: PBA recovers the
//! pessimism GBA's conservative AOCV depth bound leaves on the table, at
//! the cost of per-path re-evaluation (the turnaround/licensing tradeoff
//! the paper describes).
//!
//! Runtime attribution comes from tc-obs span stats (`sta.gba` /
//! `sta.pba`) instead of ad-hoc stopwatches, and the table plus the
//! observability snapshot land in a JSON sidecar (`tbl_gba_pba.json`)
//! next to a schema-versioned `RUN_gba_pba.json` run artifact
//! (directory `$TC_BENCH_OUT` or `.`).

use std::time::Instant;

use tc_bench::{fmt, print_table, standard_env, write_json_sidecar, write_run_artifact};
use tc_liberty::{AocvTable, DerateModel};
use tc_obs::JsonValue;
use tc_sta::pba::pba_worst_endpoints;
use tc_sta::{Constraints, Sta};

fn main() {
    let run_start = Instant::now();
    let (lib, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib, "c5315", 2015);
    // Constrain near the design's nominal capability so GBA-vs-PBA
    // decides real violations, not an absurdly overconstrained mode.
    let probe = Constraints::single_clock(5_000.0).with_derate(DerateModel::None);
    let wns = Sta::new(&nl, &lib, &stack, &probe)
        .run()
        .expect("probe")
        .wns()
        .value();
    let cons = Constraints::single_clock(5_000.0 - wns + 50.0)
        .with_derate(DerateModel::Aocv(AocvTable::from_stage_sigma(0.06)));
    let sta = Sta::new(&nl, &lib, &stack, &cons);

    // Only the measured runs below should appear in the snapshot.
    tc_obs::enable();
    tc_obs::enable_memory();
    tc_obs::reset();

    let gba = sta.run().expect("gba");
    let results = pba_worst_endpoints(&sta, 50).expect("pba");
    let snapshot = tc_obs::snapshot();

    let rows: Vec<Vec<String>> = results
        .iter()
        .take(12)
        .map(|r| {
            vec![
                format!("{:?}", r.endpoint),
                fmt(r.gba_slack.value(), 1),
                fmt(r.pba_slack.value(), 1),
                fmt(r.recovered().value(), 1),
                r.stages.to_string(),
            ]
        })
        .collect();
    print_table(
        "GBA vs PBA slack on the 12 worst endpoints (AOCV derates)",
        &["endpoint", "GBA slack", "PBA slack", "recovered", "stages"],
        &rows,
    );

    let total_rec: f64 = results.iter().map(|r| r.recovered().value()).sum();
    let viol_gba = results.iter().filter(|r| r.gba_slack.value() < 0.0).count();
    let viol_pba = results.iter().filter(|r| r.pba_slack.value() < 0.0).count();
    println!(
        "\nGBA: {} | endpoints analyzed by PBA: {}",
        gba.summary(),
        results.len()
    );
    println!(
        "violations among analyzed endpoints: GBA {viol_gba} → PBA {viol_pba} | total recovered {total_rec:.1} ps"
    );

    // Span-based runtime attribution: `sta.gba` covers every graph
    // propagation (the PBA entry point reruns it), `sta.pba` only the
    // path extraction + re-derating on top.
    let gba_ms = snapshot.span("sta.gba").map_or(0.0, |s| s.total_ms());
    let pba_ms = snapshot.span("sta.pba").map_or(0.0, |s| s.total_ms());
    println!(
        "runtime (tc-obs spans): GBA propagation {gba_ms:.1} ms total vs PBA overlay {pba_ms:.1} ms — the §1.3 turnaround cost"
    );
    println!(
        "arcs evaluated: {} | paths re-derated: {} ({} stages)",
        snapshot.counter("sta.arcs_evaluated"),
        snapshot.counter("sta.pba.paths"),
        snapshot.counter("sta.pba.stages"),
    );

    let endpoints: Vec<JsonValue> = results
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("endpoint", JsonValue::str(format!("{:?}", r.endpoint))),
                ("gba_slack_ps", JsonValue::from(r.gba_slack.value())),
                ("pba_slack_ps", JsonValue::from(r.pba_slack.value())),
                ("recovered_ps", JsonValue::from(r.recovered().value())),
                ("stages", JsonValue::from(r.stages)),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("table", JsonValue::str("tbl_gba_pba")),
        ("gba_violations", JsonValue::from(viol_gba)),
        ("pba_violations", JsonValue::from(viol_pba)),
        ("total_recovered_ps", JsonValue::from(total_rec)),
        ("gba_span_ms", JsonValue::from(gba_ms)),
        ("pba_span_ms", JsonValue::from(pba_ms)),
        ("endpoints", JsonValue::Arr(endpoints)),
        ("observability", snapshot.to_json_value()),
    ]);
    match write_json_sidecar("tbl_gba_pba", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let artifact = tc_obs::RunArtifact::new("tbl_gba_pba GBA-vs-PBA pessimism recovery")
        .knob("profile", "c5315")
        .knob("pba_endpoints", results.len())
        .knob("aocv_stage_sigma", 0.06)
        .wall_ms(run_start.elapsed().as_secs_f64() * 1e3)
        .extra("gba_violations", JsonValue::from(viol_gba))
        .extra("pba_violations", JsonValue::from(viol_pba))
        .extra("total_recovered_ps", JsonValue::from(total_rec))
        .metrics(snapshot)
        .capture_memory();
    match write_run_artifact("gba_pba", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
}
