//! Path-based analysis (PBA).
//!
//! GBA's arrival at each node is a bound over *all* paths, so per-stage
//! derates must assume the worst path shape (depth 1 for AOCV). PBA
//! extracts the actual critical path to an endpoint and re-derates it
//! with exact knowledge — true stage count for AOCV, exact RSS for
//! POCV/LVF — recovering pessimism at the cost of path enumeration
//! (the runtime/licensing tradeoff of §1.3).

use tc_core::error::{Error, Result};
use tc_core::ids::CellId;
use tc_core::units::Ps;
use tc_liberty::{CellKind, DerateModel};

use crate::analysis::Sta;
use crate::report::{Endpoint, EndpointTiming};

/// One extracted path stage (endpoint side first).
#[derive(Clone, Debug)]
pub struct PathStage {
    /// The driving cell of this stage.
    pub cell: CellId,
    /// Undereated arc delay, ps.
    pub gate_delay: f64,
    /// Per-stage late sigma, ps.
    pub sigma: f64,
    /// Wire delay into this stage's sink pin, ps.
    pub wire_delay: f64,
}

/// PBA result for one endpoint.
#[derive(Clone, Debug)]
pub struct PbaEndpoint {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// Slack as GBA reported it.
    pub gba_slack: Ps,
    /// Slack after path-based re-analysis (never more pessimistic).
    pub pba_slack: Ps,
    /// True stage count of the extracted path.
    pub stages: usize,
}

impl PbaEndpoint {
    /// Pessimism recovered by PBA.
    pub fn recovered(&self) -> Ps {
        self.pba_slack - self.gba_slack
    }
}

/// Runs PBA on the `k` worst setup endpoints of a GBA run.
///
/// # Errors
///
/// Propagates propagation failures; errors if path backtracking hits an
/// inconsistent predecessor chain (an internal bug).
pub fn pba_worst_endpoints(sta: &Sta<'_>, k: usize) -> Result<Vec<PbaEndpoint>> {
    let (state, wires) = sta.propagate()?;
    let report = sta.report_from(&state, &wires)?;
    let _span = tc_obs::span("sta.pba");
    let k_sigma = sta.k_sigma();

    let mut stages_total = 0u64;
    let mut out = Vec::new();
    for ep in worst_flop_endpoints(&report, k) {
        let Endpoint::FlopD(fid) = ep.endpoint else {
            continue;
        };
        let (path, launch_flop) = extract_path(sta, &state, &wires, fid)?;
        let pba_slack = reevaluate(sta, ep, &path, launch_flop, &wires, k_sigma)?;
        stages_total += path.len() as u64 + 1;
        out.push(PbaEndpoint {
            endpoint: ep.endpoint,
            gba_slack: ep.setup_slack,
            pba_slack,
            stages: path.len() + 1, // + the launch c2q stage
        });
    }
    tc_obs::counter("sta.pba.paths").add(out.len() as u64);
    tc_obs::counter("sta.pba.stages").add(stages_total);
    Ok(out)
}

/// A worst path to an endpoint: the stage list (endpoint-first) plus the
/// nets the path traverses — the raw material of the closure fix engine
/// (which cell to swap/upsize, which net to buffer or NDR).
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The endpoint this path feeds.
    pub endpoint: Endpoint,
    /// GBA setup slack at the endpoint.
    pub slack: Ps,
    /// Path stages, endpoint side first.
    pub stages: Vec<PathStage>,
    /// Nets traversed (endpoint side first, including the endpoint net).
    pub nets: Vec<tc_core::ids::NetId>,
    /// Launching flop, if the path starts at one.
    pub launch_flop: Option<CellId>,
}

/// Extracts the worst path to each of the `k` worst setup endpoints.
///
/// # Errors
///
/// Propagates propagation failures.
/// The `k` worst *flop* endpoints (primary outputs have no sequential
/// endpoint to backtrack from and are excluded).
fn worst_flop_endpoints(report: &crate::report::TimingReport, k: usize) -> Vec<&EndpointTiming> {
    let mut v: Vec<&EndpointTiming> = report
        .endpoints
        .iter()
        .filter(|e| matches!(e.endpoint, Endpoint::FlopD(_)))
        .collect();
    v.sort_by(|a, b| a.setup_slack.value().total_cmp(&b.setup_slack.value()));
    v.truncate(k);
    v
}

/// Extracts the worst path to each of the `k` worst setup endpoints —
/// the work list of the closure fix engine.
///
/// # Errors
///
/// Propagates propagation failures.
pub fn worst_paths(sta: &Sta<'_>, k: usize) -> Result<Vec<CriticalPath>> {
    let (state, wires) = sta.propagate()?;
    let report = sta.report_from(&state, &wires)?;
    worst_paths_from(sta, &report, &state, &wires, k)
}

/// [`worst_paths`] over already-propagated state — how the persistent
/// timer extracts paths without re-running STA.
///
/// # Errors
///
/// Errors if backtracking hits an inconsistent predecessor chain.
pub(crate) fn worst_paths_from(
    sta: &Sta<'_>,
    report: &crate::report::TimingReport,
    state: &[crate::analysis::NetState],
    wires: &crate::analysis::WireTable,
    k: usize,
) -> Result<Vec<CriticalPath>> {
    let _span = tc_obs::span("sta.pba");
    let mut out = Vec::new();
    for ep in report.worst_endpoints(k) {
        let start_net = match ep.endpoint {
            Endpoint::FlopD(fid) => sta.nl.cell(fid).inputs[0],
            Endpoint::Output(net) => net,
        };
        let (stages, launch_flop) = extract_path_from_net(sta, state, wires, start_net)?;
        // Reconstruct the net list by replaying the same backtrack: each
        // stage's cell drives the current net through its recorded
        // predecessor pin.
        let mut nets = vec![start_net];
        let mut net = start_net;
        for st in &stages {
            let pred = state[net.index()]
                .late_pred_pin
                .ok_or_else(|| Error::internal("stage without predecessor"))?;
            let in_net = sta.nl.cell(st.cell).inputs[pred];
            nets.push(in_net);
            net = in_net;
        }
        out.push(CriticalPath {
            endpoint: ep.endpoint,
            slack: ep.setup_slack,
            stages,
            nets,
            launch_flop,
        });
    }
    tc_obs::counter("sta.pba.paths").add(out.len() as u64);
    tc_obs::counter("sta.pba.stages").add(out.iter().map(|p| p.stages.len() as u64 + 1).sum());
    Ok(out)
}

/// Walks the late-predecessor breadcrumbs from a flop's D pin back to the
/// launch point. Returns stages (endpoint-first) and the launching flop
/// (None if the path starts at a primary input).
fn extract_path(
    sta: &Sta<'_>,
    state: &[crate::analysis::NetState],
    wires: &crate::analysis::WireTable,
    endpoint_flop: CellId,
) -> Result<(Vec<PathStage>, Option<CellId>)> {
    extract_path_from_net(sta, state, wires, sta.nl.cell(endpoint_flop).inputs[0])
}

fn extract_path_from_net(
    sta: &Sta<'_>,
    state: &[crate::analysis::NetState],
    wires: &crate::analysis::WireTable,
    start_net: tc_core::ids::NetId,
) -> Result<(Vec<PathStage>, Option<CellId>)> {
    let nl = sta.nl;
    let lib = sta.lib;
    let mut stages = Vec::new();
    let mut net = start_net;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > nl.cell_count() + 2 {
            return Err(Error::internal("pba backtrack did not terminate"));
        }
        let Some(driver) = nl.net(net).driver else {
            return Ok((stages, None)); // primary input startpoint
        };
        let cell = nl.cell(driver);
        let master = lib.cell(cell.master);
        if master.kind == CellKind::Flop {
            return Ok((stages, Some(driver)));
        }
        let pred = state[net.index()]
            .late_pred_pin
            .ok_or_else(|| Error::internal("missing predecessor on critical path"))?;
        let in_net = cell.inputs[pred];
        // Reconstruct the GBA evaluation of this stage.
        let load = wires.driver_load(cell.output.index()).value();
        let sink_idx = nl
            .net(in_net)
            .sinks
            .iter()
            .position(|s| s.cell == driver && s.pin == pred)
            .ok_or_else(|| Error::internal("sink lookup failed in pba"))?;
        let wire = wires.delay(in_net.index(), sink_idx).value();
        let pin_slew = state[in_net.index()].late.slew + 0.25 * wire;
        let pin_name = master.input_pins()[pred];
        let arc = master
            .arc_from(pin_name)
            .ok_or_else(|| Error::internal("missing arc in pba"))?;
        let gate_delay = arc.delay.eval(pin_slew, load);
        let sigma = match &sta.cons.derate {
            DerateModel::Pocv { sigma, .. } => sigma.late * gate_delay,
            DerateModel::Lvf { .. } => arc
                .lvf
                .as_ref()
                .map(|l| l.sigma_late.eval(pin_slew, load))
                .unwrap_or(master.pocv.late * gate_delay),
            _ => 0.0,
        };
        stages.push(PathStage {
            cell: driver,
            gate_delay,
            sigma,
            wire_delay: wire,
        });
        net = in_net;
    }
}

#[allow(clippy::too_many_arguments)]
fn reevaluate(
    sta: &Sta<'_>,
    ep: &EndpointTiming,
    path: &[PathStage],
    launch_flop: Option<CellId>,
    wires: &crate::analysis::WireTable,
    k: f64,
) -> Result<Ps> {
    let depth = path.len() + 1;
    let wire_late_factor = match &sta.cons.derate {
        DerateModel::Pocv { .. } | DerateModel::Lvf { .. } => 1.0,
        _ => sta.cons.wire_derate.0,
    };

    // Launch clock + c2q of the launching flop.
    let mut t;
    let mut var = 0.0;
    match launch_flop {
        Some(f) => {
            let (ck_late, _) = sta.clock_arrivals(f);
            let master = sta.lib.cell(sta.nl.cell(f).master);
            let arc = master
                .arc_from("CK")
                .ok_or_else(|| Error::internal("flop without CK arc"))?;
            let cs = sta.cons.clock_tree.clock_slew;
            let load = wires.driver_load(sta.nl.cell(f).output.index()).value();
            let raw = arc.delay.eval(cs, load);
            let (d, v) = derate_stage(sta, raw, depth, || {
                arc.lvf
                    .as_ref()
                    .map(|l| l.sigma_late.eval(cs, load))
                    .unwrap_or(master.pocv.late * raw)
            });
            t = ck_late + d;
            var += v;
        }
        None => {
            t = sta.cons.input_delay.value();
        }
    }

    // Stages were collected endpoint-first; accumulate from launch side.
    for st in path.iter().rev() {
        let (d, v) = derate_stage(sta, st.gate_delay, depth, || st.sigma);
        t += st.wire_delay * wire_late_factor + d;
        var += v + pocv_wire_var(sta, st.wire_delay);
    }
    // Final hop into the endpoint D pin: the difference between the
    // endpoint's total wire time and the path-internal wire segments.
    let path_wire: f64 = path.iter().map(|s| s.wire_delay * wire_late_factor).sum();
    let last_wire = (ep.wire_ps - path_wire).max(0.0);
    t += last_wire;
    var += pocv_wire_var(sta, last_wire);

    let arrival = t + k * var.sqrt();
    let required = ep.required.value();
    Ok(Ps::new(required - arrival))
}

fn derate_stage(
    sta: &Sta<'_>,
    raw: f64,
    path_depth: usize,
    sigma_of: impl Fn() -> f64,
) -> (f64, f64) {
    match &sta.cons.derate {
        DerateModel::None => (raw, 0.0),
        DerateModel::Flat { late, .. } => (raw * late, 0.0),
        DerateModel::Aocv(tbl) => (raw * tbl.late_derate(path_depth, 0.0), 0.0),
        DerateModel::Pocv { .. } | DerateModel::Lvf { .. } => {
            let s = sigma_of();
            (raw, s * s)
        }
    }
}

fn pocv_wire_var(sta: &Sta<'_>, wire: f64) -> f64 {
    match &sta.cons.derate {
        DerateModel::Pocv { .. } | DerateModel::Lvf { .. } => {
            let s = 0.05 * wire;
            s * s
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_interconnect::BeolStack;
    use tc_liberty::{AocvTable, LibConfig, Library, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    use crate::constraints::Constraints;

    fn env() -> (Library, BeolStack) {
        (
            Library::generate(&LibConfig::default(), &PvtCorner::typical()),
            BeolStack::n20(),
        )
    }

    #[test]
    fn pba_never_more_pessimistic_than_gba() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 11).unwrap();
        for derate in [
            DerateModel::None,
            DerateModel::classic_flat(),
            DerateModel::Aocv(AocvTable::from_stage_sigma(0.05)),
            DerateModel::Lvf { k: 3.0 },
        ] {
            let cons = Constraints::single_clock(900.0).with_derate(derate.clone());
            let sta = Sta::new(&nl, &lib, &stack, &cons);
            let results = pba_worst_endpoints(&sta, 10).unwrap();
            assert!(!results.is_empty());
            for r in &results {
                assert!(
                    r.pba_slack.value() >= r.gba_slack.value() - 0.3,
                    "pba {} < gba {} under {derate:?}",
                    r.pba_slack,
                    r.gba_slack
                );
            }
        }
    }

    #[test]
    fn aocv_pba_recovers_real_pessimism_on_deep_paths() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 11).unwrap();
        let cons = Constraints::single_clock(900.0)
            .with_derate(DerateModel::Aocv(AocvTable::from_stage_sigma(0.06)));
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        let results = pba_worst_endpoints(&sta, 10).unwrap();
        let recovered: f64 = results.iter().map(|r| r.recovered().value()).sum();
        assert!(
            recovered > 1.0,
            "AOCV PBA should recover pessimism, got {recovered}"
        );
        // Deeper paths recover more (statistical averaging).
        let deep = results.iter().max_by_key(|r| r.stages).unwrap();
        assert!(deep.recovered().value() > 0.0);
    }

    #[test]
    fn path_stage_counts_are_plausible() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 11).unwrap();
        let cons = Constraints::single_clock(900.0);
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        let results = pba_worst_endpoints(&sta, 5).unwrap();
        for r in &results {
            assert!(r.stages >= 1 && r.stages < 100, "stages {}", r.stages);
        }
    }
}
