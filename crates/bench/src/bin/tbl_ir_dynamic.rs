//! §1.3 / Comment 1 — dynamic IR in timing: the flat IR-margin "rug" vs
//! the per-region `-dynamic` analysis, on a placed benchmark.

use tc_bench::{fmt, print_table, standard_env};
use tc_placement::rows::Placement;
use tc_signoff::ir::{compare_flat_vs_dynamic, GridModel, IrGrid};

fn main() {
    let (lib, _stack) = standard_env();

    let mut rows = Vec::new();
    for profile in ["c5315", "c7552", "aes"] {
        let nl = tc_bench::bench_netlist(&lib, profile, 2015);
        let pl = Placement::row_fill(&nl, &lib, 400, 2);
        let cmp = compare_flat_vs_dynamic(&nl, &lib, &pl, &GridModel::default());
        rows.push(vec![
            profile.to_string(),
            fmt(1_000.0 * cmp.worst_droop, 1),
            fmt(1_000.0 * cmp.mean_droop, 1),
            fmt(cmp.flat_penalty_pct, 2) + "%",
            fmt(cmp.dynamic_penalty_pct, 2) + "%",
            fmt(cmp.recovered_pct(), 2) + " pts",
        ]);
    }
    print_table(
        "Flat IR margin vs -dynamic analysis",
        &[
            "design",
            "worst droop (mV)",
            "mean droop (mV)",
            "flat penalty",
            "dynamic penalty",
            "recovered",
        ],
        &rows,
    );

    // Activity sensitivity on one design.
    let nl = tc_bench::bench_netlist(&lib, "c5315", 2015);
    let pl = Placement::row_fill(&nl, &lib, 400, 2);
    let mut rows = Vec::new();
    for activity in [0.05, 0.15, 0.30, 0.50] {
        let grid = IrGrid::build(
            &nl,
            &lib,
            &pl,
            &GridModel {
                activity,
                ..Default::default()
            },
        );
        rows.push(vec![
            fmt(activity, 2),
            fmt(1_000.0 * grid.worst(), 1),
            fmt(1_000.0 * grid.mean(), 1),
        ]);
    }
    print_table(
        "Droop vs switching activity (c5315)",
        &["activity", "worst droop (mV)", "mean droop (mV)"],
        &rows,
    );
    println!("\n→ the flat margin must be sized for the worst tile at the worst mode;");
    println!("  -dynamic charges each path its own neighbourhood (the §1.3 detangling).");
}
