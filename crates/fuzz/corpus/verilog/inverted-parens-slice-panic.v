module m (a); input a; X) Y(; endmodule
