//! Counter and histogram handles.
//!
//! Both are cheap `Arc` clones onto cells owned by the global registry;
//! hot paths fetch a handle once (outside the loop) and hammer it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::is_enabled;
use crate::trace;

/// A monotonically-increasing event counter.
#[derive(Clone)]
pub struct Counter {
    name: Arc<str>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub(crate) fn new(name: &str, cell: Arc<AtomicU64>) -> Self {
        Counter {
            name: Arc::from(name),
            cell,
        }
    }

    /// Adds `n` events. A no-op (one relaxed load) while disabled; with
    /// the flight recorder on, also appends a counter-delta trace event
    /// to the calling thread's ring.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
            trace::counter_delta(&self.name, n);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` without the enabled check or trace emission. The trace
    /// layer's own bookkeeping (`obs.trace.dropped`) uses this to avoid
    /// re-entering a full ring.
    #[inline]
    pub(crate) fn add_raw(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets a histogram keeps.
pub(crate) const BUCKETS: usize = 40;

/// Raw histogram state: count/sum/min/max plus log₂-width buckets.
///
/// Bucket `i` holds samples with `floor(log2(1 + max(v, 0))) == i`, i.e.
/// bucket boundaries at `2^i − 1`. Negative samples land in bucket 0 but
/// still update `min`/`sum` exactly.
#[derive(Clone, Debug)]
pub(crate) struct HistData {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistData {
    pub(crate) fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }
}

/// Which bucket a sample falls into.
pub(crate) fn bucket_of(v: f64) -> usize {
    // NaN and non-positive samples both land in the zero bucket.
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let idx = (1.0 + v).log2().floor();
    (idx as usize).min(BUCKETS - 1)
}

/// Inclusive-exclusive value range `[lo, hi)` of bucket `i`.
pub(crate) fn bucket_range(i: usize) -> (f64, f64) {
    let lo = (2f64).powi(i as i32) - 1.0;
    let hi = (2f64).powi(i as i32 + 1) - 1.0;
    (lo, hi)
}

/// A distribution recorder (e.g. Newton iterations per timestep).
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<HistData>>);

impl Histogram {
    pub(crate) fn new(cell: Arc<Mutex<HistData>>) -> Self {
        Histogram(cell)
    }

    /// Records one sample. A no-op while disabled.
    pub fn record(&self, v: f64) {
        if is_enabled() {
            self.0.lock().expect("obs histogram poisoned").record(v);
        }
    }

    /// Sample count so far.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("obs histogram poisoned").count
    }
}
