//! **Fig 9** — lifetime-average power vs area across BTI aging-signoff
//! corners with AVS (Chan–Chan–Kahng, ref \[1\]), for the four benchmark
//! stand-ins (c5315, c7552, AES, MPEG2).
//!
//! Each benchmark's power profile (dynamic vs leakage share) is derived
//! from its synthetic netlist at the typical corner, so the four curves
//! differ the way the paper's four plots do.

use tc_aging::avs::AvsSystem;
use tc_aging::signoff::{aging_signoff_sweep, fig9_corners, PowerProfile};
use tc_bench::{fmt, print_table, standard_env};

fn main() {
    let (lib, _stack) = standard_env();
    let sys = AvsSystem::nominal_28nm();
    let corners = fig9_corners();
    println!(
        "aging corners (assumed stress years): {:?} | product lifetime: 10 years",
        corners
    );

    // Leakage is evaluated at the hot operating corner where it matters
    // (and where BTI stress happens); activity differs per workload,
    // which is what differentiates the four Fig 9 plots.
    let hot = tc_liberty::PvtCorner {
        temperature: tc_core::units::Celsius::new(105.0),
        ..tc_liberty::PvtCorner::typical()
    };
    let hot_lib = tc_liberty::Library::generate(&tc_liberty::LibConfig::default(), &hot);

    for (profile, activity) in [
        ("c5315", 0.12),
        ("c7552", 0.08),
        ("aes", 0.035),
        ("mpeg2", 0.02),
    ] {
        let nl = tc_bench::bench_netlist(&lib, profile, 2015);
        let freq_ghz = 1.0;
        let dyn_uw: f64 = nl
            .cells()
            .map(|c| {
                let cell = lib.cell(c.master);
                // fJ/switch × switches/ns = µW.
                cell.switch_energy(4.0) * activity * freq_ghz
            })
            .sum();
        let leak_uw = nl.total_leakage_uw(&hot_lib);
        let share = dyn_uw / (dyn_uw + leak_uw);
        let outcomes = aging_signoff_sweep(
            &sys,
            PowerProfile {
                dynamic_share: share,
            },
            &corners,
            10.0,
        );
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                vec![
                    (i + 1).to_string(),
                    fmt(o.assumed_years, 1),
                    fmt(o.area_pct, 1),
                    fmt(o.power_pct, 1),
                    fmt(o.final_voltage.value(), 3),
                    o.always_met.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig 9 [{profile}]: {} cells, dynamic share {:.0}%",
                nl.cell_count(),
                100.0 * share
            ),
            &["corner", "assumed yrs", "area %", "power %", "EOL V", "met"],
            &rows,
        );
    }
    println!(
        "\n(shape to match the paper: underestimating aging → power ↑; overestimating → area ↑)"
    );
}
