//! Multi-input switching (MIS) vs single-input switching (SIS) study —
//! the paper's **Figure 4** (§2.1).
//!
//! Setup, following the paper: a NAND2 cell drives a fanout-of-3 inverter
//! load. A ramp transition is applied at input `IN` (the measured arc).
//! For **SIS**, the other input `IN1` is tied to VDD. For **MIS**, `IN1`
//! ramps in the *same direction* with the same slew, and its arrival
//! offset relative to `IN` is swept; the extreme arc delay over the sweep
//! is the MIS delay.
//!
//! Physics reproduced:
//! * inputs **falling** → NAND output **rises** through the two *parallel*
//!   PMOS devices; with MIS both conduct, roughly doubling drive, so the
//!   MIS rise arc can be **< ~50–70% of SIS** — critical for hold signoff;
//! * inputs **rising** → output **falls** through the *series* NMOS stack;
//!   with SIS the `IN1` transistor is already fully on, while with MIS it
//!   is still turning on, so the MIS fall arc is **> ~10% slower**.

use tc_core::error::{Error, Result};
use tc_core::units::{Celsius, Ff, Ps, Volt};
use tc_device::{Technology, VtClass};

use crate::cells::{inverter, nand2};
use crate::circuit::{Circuit, Pwl};
use crate::measure::Edge;
use crate::solver::{transient, TranOptions};

/// Direction of the *input* transition being swept (the paper plots both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputDir {
    /// Inputs rise; output falls through the series NMOS stack.
    Rising,
    /// Inputs fall; output rises through the parallel PMOS devices.
    Falling,
}

/// Parameters of the Fig 4 experiment.
#[derive(Clone, Debug)]
pub struct MisStudy {
    /// Supply voltage.
    pub vdd: Volt,
    /// Die temperature.
    pub temp: Celsius,
    /// Input transition time (0–100%), ps.
    pub input_slew: f64,
    /// IN1 arrival offsets (ps, relative to IN) swept for the MIS delay.
    pub offsets: Vec<f64>,
}

impl MisStudy {
    /// The paper's configuration: nominal VDD, ±40 ps offset sweep.
    pub fn paper_default(vdd: Volt) -> Self {
        MisStudy {
            vdd,
            temp: Celsius::new(25.0),
            input_slew: 30.0,
            offsets: (-8..=8).map(|i| i as f64 * 5.0).collect(),
        }
    }
}

/// Outcome of one MIS/SIS comparison.
#[derive(Clone, Debug)]
pub struct MisResult {
    /// Input direction of the measured arc.
    pub dir: InputDir,
    /// Supply at which it was measured.
    pub vdd: Volt,
    /// SIS arc delay (IN1 at VDD).
    pub sis_delay: Ps,
    /// Extreme MIS arc delay over the offset sweep (min for a rising
    /// output where MIS speeds the arc up, max for a falling output where
    /// it slows it down).
    pub mis_delay: Ps,
    /// Offset (ps) at which the extreme was found.
    pub worst_offset: f64,
    /// Arc delay at every swept offset, parallel to the study's `offsets`.
    pub sweep: Vec<Ps>,
}

impl MisResult {
    /// MIS delay as a fraction of SIS delay.
    pub fn ratio(&self) -> f64 {
        self.mis_delay / self.sis_delay
    }
}

fn arc_delay(
    tech: &Technology,
    vdd_v: Volt,
    temp: Celsius,
    input_slew: f64,
    dir: InputDir,
    in1_wave: Pwl,
    in1_switches: bool,
) -> Result<Ps> {
    let mut ckt = Circuit::new();
    let vdd = ckt.rail("vdd", vdd_v);
    let input = ckt.node("in");
    let in1 = ckt.node("in1");
    let out = ckt.node("out");
    nand2(&mut ckt, vdd, input, in1, out, VtClass::Svt, 1.0);
    // FO3 load: three unit inverters plus their wiring.
    for i in 0..3 {
        let sink = ckt.node(format!("fo{i}"));
        inverter(&mut ckt, vdd, out, sink, VtClass::Svt, 1.0);
        ckt.cap_to_ground(sink, Ff::new(0.5));
    }

    let t_edge = 100.0;
    let (v0, v1, in_edge, out_edge) = match dir {
        InputDir::Rising => (Volt::ZERO, vdd_v, Edge::Rise, Edge::Fall),
        InputDir::Falling => (vdd_v, Volt::ZERO, Edge::Fall, Edge::Rise),
    };
    ckt.source(input, Pwl::ramp(t_edge, input_slew, v0, v1));
    ckt.source(in1, in1_wave);

    let opts = TranOptions {
        t_stop: 350.0,
        dt: 0.25,
        temp,
        ..Default::default()
    };
    let res = transient(&ckt, tech, &opts)?;
    let w_in = res.waveform(input);
    let w_out = res.waveform(out);
    // The arc is referenced to the input that *causes* the output edge:
    // with rising inputs the NAND output falls on the LAST input (series
    // stack, AND), with falling inputs it rises on the FIRST (parallel
    // pull-up, OR). This is how MIS characterization isolates the
    // multi-input effect from trivial arrival-time bookkeeping.
    let half = 0.5 * vdd_v.value();
    let t_in = w_in
        .crossing(half, in_edge, 0.0)
        .ok_or_else(|| Error::internal("nand2 input never crossed 50%"))?;
    let t_cause = if in1_switches {
        let w_in1 = res.waveform(in1);
        let t_in1 = w_in1
            .crossing(half, in_edge, 0.0)
            .ok_or_else(|| Error::internal("nand2 IN1 never crossed 50%"))?;
        match dir {
            InputDir::Rising => t_in.max(t_in1),
            InputDir::Falling => t_in.min(t_in1),
        }
    } else {
        t_in
    };
    let t_out = w_out
        .crossing(half, out_edge, 0.0)
        .ok_or_else(|| Error::internal("nand2 arc produced no output transition"))?;
    Ok(Ps::new(t_out - t_cause))
}

/// Runs the MIS/SIS comparison for one input direction.
///
/// # Errors
///
/// Propagates simulator convergence failures and missing transitions.
pub fn run_mis_study(tech: &Technology, study: &MisStudy, dir: InputDir) -> Result<MisResult> {
    let t_edge = 100.0;
    // SIS: IN1 parked at VDD (NAND2 sensitized).
    let sis_delay = arc_delay(
        tech,
        study.vdd,
        study.temp,
        study.input_slew,
        dir,
        Pwl::constant(study.vdd),
        false,
    )?;

    let mut sweep = Vec::with_capacity(study.offsets.len());
    for &off in &study.offsets {
        let (v0, v1) = match dir {
            InputDir::Rising => (Volt::ZERO, study.vdd),
            InputDir::Falling => (study.vdd, Volt::ZERO),
        };
        let in1_wave = Pwl::ramp(t_edge + off, study.input_slew, v0, v1);
        sweep.push(arc_delay(
            tech,
            study.vdd,
            study.temp,
            study.input_slew,
            dir,
            in1_wave,
            true,
        )?);
    }

    // The signoff-relevant extreme: fastest arc for the rising output
    // (hold risk), slowest for the falling output (setup risk).
    let (idx, &mis_delay) = match dir {
        InputDir::Falling => sweep
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("non-empty sweep"),
        InputDir::Rising => sweep
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .expect("non-empty sweep"),
    };
    Ok(MisResult {
        dir,
        vdd: study.vdd,
        sis_delay,
        mis_delay,
        worst_offset: study.offsets[idx],
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mis_speeds_up_rising_output() {
        // Inputs falling → parallel PMOS → MIS delay well below SIS.
        let tech = Technology::planar_28nm();
        let mut study = MisStudy::paper_default(Volt::new(0.9));
        study.offsets = vec![-10.0, 0.0, 10.0];
        let r = run_mis_study(&tech, &study, InputDir::Falling).unwrap();
        assert!(
            r.ratio() < 0.85,
            "MIS rise arc should be much faster: ratio {}",
            r.ratio()
        );
    }

    #[test]
    fn mis_slows_down_falling_output() {
        // Inputs rising → series NMOS stack → MIS delay above SIS.
        let tech = Technology::planar_28nm();
        let mut study = MisStudy::paper_default(Volt::new(0.9));
        study.offsets = vec![-10.0, 0.0, 10.0];
        let r = run_mis_study(&tech, &study, InputDir::Rising).unwrap();
        assert!(
            r.ratio() > 1.05,
            "MIS fall arc should be slower: ratio {}",
            r.ratio()
        );
    }

    #[test]
    fn far_offset_approaches_sis() {
        // With IN1 arriving far ahead, the MIS sweep endpoint approaches SIS.
        let tech = Technology::planar_28nm();
        let study = MisStudy {
            vdd: Volt::new(0.9),
            temp: Celsius::new(25.0),
            input_slew: 30.0,
            offsets: vec![-80.0],
        };
        let r = run_mis_study(&tech, &study, InputDir::Rising).unwrap();
        let early = r.sweep[0];
        assert!(
            (early / r.sis_delay - 1.0).abs() < 0.15,
            "IN1 80 ps early ≈ SIS: {} vs {}",
            early,
            r.sis_delay
        );
    }
}
