#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # timing-closure — a reproduction of "New Game, New Goal Posts:
//! A Recent History of Timing Closure" (A. B. Kahng, DAC 2015)
//!
//! This facade crate re-exports the full workspace and adds the
//! high-level [`SignoffFlow`] that strings the subsystems together the
//! way a physical-design team would: generate/ingest a netlist, place
//! it, synthesize a clock tree, run the closure loop, then recover
//! power.
//!
//! The workspace layers, bottom-up:
//!
//! | Crate | Role |
//! |---|---|
//! | [`core`] (`tc-core`) | units, LUTs, statistics, deterministic RNG |
//! | [`device`] (`tc-device`) | alpha-power-law MOSFETs, temperature inversion |
//! | [`sim`] (`tc-sim`) | transient circuit simulation (the SPICE substitute) |
//! | [`liberty`] (`tc-liberty`) | NLDM libraries, PVT corners, AOCV/POCV/LVF |
//! | [`netlist`] (`tc-netlist`) | netlist graph, ECO edits, benchmark generators |
//! | [`interconnect`] (`tc-interconnect`) | BEOL stack, RC trees, SADP variability |
//! | [`sta`] (`tc-sta`) | GBA/PBA static timing, MCMM, CPPR, SI |
//! | [`variation`] (`tc-variation`) | Monte Carlo, model accuracy, tightened BEOL corners |
//! | [`placement`] (`tc-placement`) | rows, MinIA rule checking/fixing |
//! | [`clock`] (`tc-clock`) | CTS, skew, jitter, useful skew |
//! | [`aging`] (`tc-aging`) | BTI, AVS loop, aging-aware signoff |
//! | [`signoff`] (`tc-signoff`) | corner explosion, margins, yield, margin recovery |
//! | [`closure`] (`tc-closure`) | the Fig 1 closure loop and leakage recovery |
//!
//! # Examples
//!
//! ```
//! use timing_closure::SignoffFlow;
//!
//! let outcome = SignoffFlow::demo_block(99).run(1_800.0)?;
//! println!("{}", outcome.final_report.summary());
//! assert!(outcome.closed);
//! # Ok::<(), tc_core::Error>(())
//! ```

pub use tc_aging as aging;
pub use tc_clock as clock;
pub use tc_closure as closure;
pub use tc_core as core;
pub use tc_device as device;
pub use tc_interconnect as interconnect;
pub use tc_liberty as liberty;
pub use tc_netlist as netlist;
pub use tc_par as par;
pub use tc_placement as placement;
pub use tc_signoff as signoff;
pub use tc_sim as sim;
pub use tc_sta as sta;
pub use tc_variation as variation;

use tc_clock::cts::ClockTree;
use tc_closure::flow::{ClosureConfig, ClosureFlow};
use tc_closure::power::recover_leakage;
use tc_core::error::Result;
use tc_interconnect::BeolStack;
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_netlist::gen::{generate, BenchProfile};
use tc_netlist::Netlist;
use tc_placement::rows::Placement;
use tc_sta::{Constraints, Sta, TimingReport};

/// The end-to-end flow: place → CTS → closure loop → leakage recovery.
///
/// This mirrors the "months of block-level final physical implementation"
/// the paper describes, compressed into one call for experimentation.
pub struct SignoffFlow {
    /// The library (one PVT corner; use [`sta::mcmm`] for multi-corner).
    pub lib: Library,
    /// BEOL stack.
    pub stack: BeolStack,
    /// The design under closure.
    pub netlist: Netlist,
    /// Closure-loop configuration.
    pub config: ClosureConfig,
}

/// What the flow produced.
pub struct FlowOutcome {
    /// Final signoff report.
    pub final_report: TimingReport,
    /// Whether the block closed.
    pub closed: bool,
    /// Closure iterations used.
    pub iterations: usize,
    /// Leakage saved by post-closure recovery (fraction).
    pub leakage_saving: f64,
    /// Final constraints (clock tree with CTS latencies + useful skew).
    pub constraints: Constraints,
}

impl SignoffFlow {
    /// A small demo block (seeded) over the default library and stack.
    pub fn demo_block(seed: u64) -> Self {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let netlist = generate(&lib, BenchProfile::tiny(), seed).expect("generator is total");
        SignoffFlow {
            lib,
            stack: BeolStack::n20(),
            netlist,
            config: ClosureConfig::default(),
        }
    }

    /// A flow over a caller-provided design.
    pub fn new(lib: Library, netlist: Netlist) -> Self {
        SignoffFlow {
            lib,
            stack: BeolStack::n20(),
            netlist,
            config: ClosureConfig::default(),
        }
    }

    /// Runs the flow at the given clock period (ps).
    ///
    /// # Errors
    ///
    /// Propagates analysis failures from any stage.
    pub fn run(mut self, period_ps: f64) -> Result<FlowOutcome> {
        // Placement and clock tree.
        let placement = Placement::row_fill(&self.netlist, &self.lib, 128, 7);
        let tree = ClockTree::synthesize(&self.netlist, &self.lib, &placement, 8);
        let mut cons = Constraints::single_clock(period_ps);
        cons.clock_tree = tree.to_model(25.0);

        // Closure loop.
        let mut flow = ClosureFlow::new(&self.lib, &self.stack, self.config.clone());
        let outcome = flow.run(&mut self.netlist, cons)?;

        // Post-closure power recovery (no-op unless clean).
        let recovery = recover_leakage(
            &mut self.netlist,
            &self.lib,
            &self.stack,
            &outcome.constraints,
            25,
            |_| true,
        )?;

        let final_report =
            Sta::new(&self.netlist, &self.lib, &self.stack, &outcome.constraints).run()?;
        Ok(FlowOutcome {
            closed: final_report.is_clean(),
            iterations: outcome.iterations.len(),
            leakage_saving: recovery.saving(),
            final_report,
            constraints: outcome.constraints,
        })
    }
}
