//! Crosstalk (SI) delta-delay model.
//!
//! The paper lists noise closure and "STA with noise analysis enabled"
//! among the modern signoff requirements (§1.3). We model the dominant
//! timing effect: an aggressor switching opposite to the victim inflates
//! the victim's effective coupling capacitance (Miller effect), adding
//! delay on late paths and — switching in the same direction — removing
//! it on early paths.

use tc_core::units::Ps;
use tc_interconnect::beol::{BeolCorner, MetalLayer};
use tc_interconnect::estimate::NdrClass;

/// Fraction of nets assumed to have a timing-window-overlapping
/// aggressor (a graph-level SI analysis would compute real windows; the
/// flat factor reproduces the signoff-level magnitude).
const AGGRESSOR_ACTIVITY: f64 = 0.6;

/// Miller factor excursion for opposite-direction switching.
const MILLER_EXCESS: f64 = 0.85;

/// Delta delay (ps) a net's sinks see from coupling, given its layer,
/// corner, routing rule and per-sink wire delays (a borrowed slice, so
/// callers keeping delays in a pooled arena pass them without copying).
/// Added to late arrivals, subtracted from early arrivals.
pub fn coupling_delta(
    layer: &MetalLayer,
    corner: BeolCorner,
    ndr: NdrClass,
    sink_delays: &[Ps],
) -> f64 {
    let f = corner.factors(layer.multi_patterned);
    let (_, fcg, fcc) = ndr.factors();
    let cc = layer.cc_per_um * f.cc * fcc;
    let cg = layer.cg_per_um * f.cg * fcg;
    let coupling_fraction = cc / (cc + cg);
    let worst_wire = sink_delays.iter().map(|d| d.value()).fold(0.0f64, f64::max);
    AGGRESSOR_ACTIVITY * MILLER_EXCESS * coupling_fraction * worst_wire
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::units::Ff;
    use tc_interconnect::beol::BeolStack;
    use tc_interconnect::estimate::WireModel;

    #[test]
    fn delta_scales_with_wire_delay_and_coupling() {
        let stack = BeolStack::n20();
        let caps = [Ff::new(2.0)];
        let short = WireModel::from_length(20.0);
        let long = WireModel::from_length(600.0);
        let t_short = short
            .timing(&stack, BeolCorner::Typical, None, &caps)
            .unwrap();
        let t_long = long
            .timing(&stack, BeolCorner::Typical, None, &caps)
            .unwrap();
        let d_short = coupling_delta(
            stack.layer(short.layer),
            BeolCorner::Typical,
            NdrClass::Default,
            &t_short.sink_delays,
        );
        let d_long = coupling_delta(
            stack.layer(long.layer),
            BeolCorner::Typical,
            NdrClass::Default,
            &t_long.sink_delays,
        );
        assert!(d_long > d_short);
        assert!(d_short >= 0.0);
    }

    #[test]
    fn spacing_ndr_reduces_si() {
        let stack = BeolStack::n20();
        let caps = [Ff::new(2.0)];
        let wm = WireModel::from_length(300.0);
        let t = wm.timing(&stack, BeolCorner::Typical, None, &caps).unwrap();
        let base = coupling_delta(
            stack.layer(wm.layer),
            BeolCorner::Typical,
            NdrClass::Default,
            &t.sink_delays,
        );
        let spaced = coupling_delta(
            stack.layer(wm.layer),
            BeolCorner::Typical,
            NdrClass::DoubleWidthSpacing,
            &t.sink_delays,
        );
        assert!(
            spaced < base,
            "spacing must reduce coupling: {spaced} vs {base}"
        );
    }

    #[test]
    fn ccworst_corner_amplifies_si() {
        let stack = BeolStack::n20();
        let caps = [Ff::new(2.0)];
        let wm = WireModel::from_length(300.0);
        let t = wm.timing(&stack, BeolCorner::Typical, None, &caps).unwrap();
        let typ = coupling_delta(
            stack.layer(wm.layer),
            BeolCorner::Typical,
            NdrClass::Default,
            &t.sink_delays,
        );
        let ccw = coupling_delta(
            stack.layer(wm.layer),
            BeolCorner::CcWorst,
            NdrClass::Default,
            &t.sink_delays,
        );
        assert!(ccw > typ);
    }
}
