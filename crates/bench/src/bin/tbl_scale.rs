//! **Capacity-ladder scale harness** — the paper's §1.3 regime where
//! analysis cost, not algorithm quality, is what kills closure: "new
//! game" designs are millions of cells, and both runtime *and memory*
//! must scale or the signoff loop simply does not fit the machine.
//!
//! Streams seeded `scale_*` netlists (50k / 200k / 1M cells — the
//! generator's scratch is bounded, see `tc_netlist::gen::generate_streamed`)
//! and measures, per profile: netlist generation, persistent
//! [`Timer`] graph build, one full STA, and a 10-ECO incremental
//! re-time sequence whose final WNS/TNS is asserted bit-identical to a
//! from-scratch run. Every phase records wall clock **and** heap
//! (counting-allocator net/peak deltas plus kernel VmHWM/VmRSS).
//!
//! Profiles come from `TC_SCALE_PROFILES` (comma-separated, default
//! `50k,200k`). The million-cell rung is opt-in (`TC_SCALE_PROFILES=
//! 50k,200k,1m`) and deliberately not run in CI — it needs ~2 GB and
//! minutes of wall clock; CI gates the 50k rung only.
//!
//! Outputs (directory `$TC_BENCH_OUT`, default `artifacts/`):
//! * `BENCH_scale.json` — all profiles run this invocation.
//! * `BENCH_scale_<profile>.json` — one per profile, so CI can gate a
//!   subset of the ladder against its committed baseline.
//! * `PROF_scale_<profile>.json` — per-rung span profile (the flight
//!   recorder is cleared between rungs, so each profile covers exactly
//!   one rung); `tc_prof diff` gates the 50k rung in CI.
//! * `RUN_scale.json` — schema-versioned run artifact with the memory
//!   section and per-span heap attribution.

use std::time::Instant;

use tc_bench::{
    fmt, print_table, standard_env, write_json_sidecar, write_prof_sidecar, write_run_artifact,
};
use tc_core::ids::NetId;
use tc_core::rng::Rng;
use tc_obs::JsonValue;
use tc_sta::{Constraints, Sta, Timer};

/// Incremental ECOs replayed per profile.
const ECOS: usize = 10;
/// Fixed clock period, ps: generous enough that the ladder times the
/// same mode at every size (no per-profile probe STA).
const PERIOD_PS: f64 = 1_500.0;

/// One phase's wall + heap measurement.
struct Phase {
    wall_ms: f64,
    net_bytes: i64,
    peak_growth_bytes: u64,
}

/// Runs `f` under a heap mark and a tc-obs span, returning the
/// measurement next to `f`'s output.
fn measured<R>(span: &str, f: impl FnOnce() -> R) -> (Phase, R) {
    let mark = tc_obs::heap_mark();
    let t0 = Instant::now();
    let out = {
        let _span = tc_obs::span(span);
        f()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let d = mark.delta();
    (
        Phase {
            wall_ms,
            net_bytes: d.net_bytes,
            peak_growth_bytes: d.peak_bytes,
        },
        out,
    )
}

fn phase_json(p: &Phase) -> JsonValue {
    JsonValue::obj([
        ("wall_ms", JsonValue::from(p.wall_ms)),
        ("net_bytes", JsonValue::from(p.net_bytes)),
        ("peak_growth_bytes", JsonValue::from(p.peak_growth_bytes)),
    ])
}

fn profile_names() -> Vec<String> {
    let raw = std::env::var("TC_SCALE_PROFILES").unwrap_or_else(|_| "50k,200k".to_string());
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|tok| match tok.trim_start_matches("scale_") {
            "50k" => "scale_50k".to_string(),
            "200k" => "scale_200k".to_string(),
            "1m" => "scale_1m".to_string(),
            other => panic!("unknown scale profile `{other}` (want 50k, 200k or 1m)"),
        })
        .collect()
}

fn main() {
    let run_start = Instant::now();
    tc_obs::enable();
    tc_obs::enable_memory();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    let (lib, stack) = standard_env();
    let cons = Constraints::single_clock(PERIOD_PS);

    let profiles = profile_names();
    println!("scale ladder: {}", profiles.join(", "));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut profile_docs: Vec<JsonValue> = Vec::new();
    for name in &profiles {
        // Each rung gets its own span profile: start from an empty ring
        // so PROF_scale_<profile> attributes exactly this rung's work.
        tc_obs::clear_trace();
        let (gen_phase, nl) = measured("scale.generate", || {
            tc_bench::bench_netlist(&lib, name, 2015)
        });
        let cells = nl.cell_count();
        let nets = nl.net_count();

        let (build_phase, timer) = measured("scale.build", || {
            Timer::new(&nl, &lib, &stack, cons.clone()).expect("timer build")
        });
        let mut timer = timer;

        let allocs_before_sta = tc_obs::memory_stats().allocs;
        let (sta_phase, full) = measured("scale.sta", || {
            Sta::new(&nl, &lib, &stack, &cons).run().expect("full sta")
        });
        let allocs_per_sta_run = tc_obs::memory_stats().allocs - allocs_before_sta;
        let wns_ps = full.wns().value();
        let tns_ps = full.tns().value();

        // Re-route-style ECOs: always applicable, cone-local, seeded.
        let mut nl = nl;
        let mut rng = Rng::seed_from(2015);
        let (eco_phase, ()) = measured("scale.eco", || {
            for _ in 0..ECOS {
                let net = NetId::new(rng.below(nl.net_count()));
                let cur = nl.net(net).wire_length_um;
                nl.set_wire_length(net, (cur * rng.uniform_in(0.6, 1.4)).max(1.0));
                timer.update(&nl).expect("incremental update");
            }
        });
        let incr_report = timer.report(&nl);
        let verify = {
            let _span = tc_obs::span("scale.verify");
            Sta::new(&nl, &lib, &stack, &cons)
                .run()
                .expect("verify sta")
        };
        assert_eq!(
            incr_report.wns(),
            verify.wns(),
            "{name}: incremental WNS diverged from full STA after {ECOS} ECOs"
        );
        assert_eq!(
            incr_report.tns(),
            verify.tns(),
            "{name}: incremental TNS diverged from full STA after {ECOS} ECOs"
        );

        let mem = tc_obs::memory_stats();
        let vm_hwm = tc_obs::vm_hwm_bytes();
        let vm_rss = tc_obs::vm_rss_bytes();
        rows.push(vec![
            name.clone(),
            cells.to_string(),
            fmt(gen_phase.wall_ms, 0),
            fmt(build_phase.wall_ms, 0),
            fmt(sta_phase.wall_ms, 0),
            fmt(eco_phase.wall_ms / ECOS as f64, 1),
            tc_obs::fmt_bytes(mem.peak_bytes as i64),
            vm_hwm.map_or_else(|| "n/a".to_string(), |b| tc_obs::fmt_bytes(b as i64)),
        ]);

        let doc = JsonValue::obj([
            ("profile", JsonValue::str(name.as_str())),
            ("cells", JsonValue::from(cells)),
            ("nets", JsonValue::from(nets)),
            ("period_ps", JsonValue::from(PERIOD_PS)),
            ("wns_ps", JsonValue::from(wns_ps)),
            ("tns_ps", JsonValue::from(tns_ps)),
            ("ecos", JsonValue::from(ECOS)),
            ("wns_bit_identical", JsonValue::Bool(true)),
            ("generate", phase_json(&gen_phase)),
            ("build", phase_json(&build_phase)),
            ("sta", phase_json(&sta_phase)),
            ("eco", phase_json(&eco_phase)),
            // Process-cumulative at this rung (the ladder runs small →
            // large, so each rung's peak covers its predecessors).
            ("peak_heap_bytes", JsonValue::from(mem.peak_bytes)),
            // Footprint efficiency of the flat data plane: cumulative
            // peak heap normalized by this rung's cell count.
            (
                "bytes_per_cell",
                JsonValue::from(mem.peak_bytes as f64 / cells as f64),
            ),
            // Allocator calls one full GBA propagation performed — the
            // pooled-span/scratch-arena regression canary.
            ("allocs_per_sta_run", JsonValue::from(allocs_per_sta_run)),
            (
                "vm_hwm_bytes",
                vm_hwm.map_or(JsonValue::Null, JsonValue::from),
            ),
            (
                "vm_rss_bytes",
                vm_rss.map_or(JsonValue::Null, JsonValue::from),
            ),
        ]);
        let single = JsonValue::obj([
            ("table", JsonValue::str("scale")),
            ("profiles", JsonValue::Arr(vec![doc.clone()])),
        ]);
        let short = name.trim_start_matches("scale_");
        match write_json_sidecar(&format!("BENCH_scale_{short}"), &single.render()) {
            Ok(path) => println!("sidecar: {}", path.display()),
            Err(e) => eprintln!("sidecar write failed: {e}"),
        }
        match write_prof_sidecar(
            &format!("scale_{short}"),
            &format!("tbl_scale {name} rung ({cells} cells)"),
        ) {
            Ok(Some(path)) => println!("profile: {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("profile write failed: {e}"),
        }
        profile_docs.push(doc);
        // `nl`/`timer` drop here: each rung starts from the previous
        // rung's live floor, not its transient peak.
    }

    print_table(
        "capacity ladder: wall and peak heap vs design size",
        &[
            "profile",
            "cells",
            "gen ms",
            "build ms",
            "sta ms",
            "eco ms",
            "peak heap",
            "VmHWM",
        ],
        &rows,
    );
    println!("\nall rungs: incremental WNS/TNS bit-identical to full STA after {ECOS} ECOs each");

    let doc = JsonValue::obj([
        ("table", JsonValue::str("scale")),
        ("profiles", JsonValue::Arr(profile_docs)),
    ]);
    match write_json_sidecar("BENCH_scale", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let artifact = tc_obs::RunArtifact::new("tbl_scale capacity ladder")
        .knob("profiles", profiles.join(","))
        .knob("ecos", ECOS)
        .wall_ms(run_start.elapsed().as_secs_f64() * 1e3)
        .metrics(tc_obs::snapshot())
        .capture_memory();
    match write_run_artifact("scale", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
}
