//! **Incremental STA speedup table** — the engine economics behind
//! Fig 1's closure loop. Every fix pass in the loop asks "did this ECO
//! help?"; answering with a from-scratch STA makes the loop O(design)
//! per probe, answering with the persistent [`Timer`]'s dirty-cone
//! update makes it O(cone).
//!
//! This harness replays a representative closure-loop ECO sequence
//! (Vt swaps, resizes, buffer insertions, NDR route-class promotions,
//! wirelength changes) on the Fig 1 workload (`soc_block`, constrained
//! 500 ps beyond natural Fmax) and times both answers per edit,
//! asserting they agree bit-for-bit on WNS/TNS at every step. Results
//! land in a `BENCH_incremental_sta.json` sidecar, a
//! `RUN_tbl_incremental_sta.json` run artifact, and — with the flight
//! recorder armed — `tbl_incremental_sta.trace.json` / `.folded` trace
//! exports plus the `PROF_tbl_incremental_sta.json` span profile
//! (directory `$TC_BENCH_OUT`, default `artifacts/`).

use std::time::Instant;

use tc_bench::{
    fmt, print_table, standard_env, write_json_sidecar, write_prof_sidecar, write_run_artifact,
    write_trace_sidecars,
};
use tc_core::ids::{CellId, NetId};
use tc_core::rng::Rng;
use tc_liberty::CellKind;
use tc_netlist::Netlist;
use tc_obs::JsonValue;
use tc_sta::{Constraints, Sta, Timer};

/// One closure-loop-representative ECO, drawn from a seeded stream.
/// Returns the edit-kind label, or `None` if the draw was inapplicable
/// (e.g. no faster variant exists for the chosen cell).
fn apply_random_eco(
    rng: &mut Rng,
    nl: &mut Netlist,
    lib: &tc_liberty::Library,
) -> Option<&'static str> {
    match rng.below(5) {
        0 => {
            // Vt swap toward LVT on a random combinational cell.
            let cell = CellId::new(rng.below(nl.cell_count()));
            if lib.cell(nl.cell(cell).master).kind == CellKind::Flop {
                return None;
            }
            let faster = lib.vt_faster(nl.cell(cell).master)?;
            nl.swap_master(lib, cell, faster).expect("swap");
            Some("vt_swap")
        }
        1 => {
            // Drive-strength upsize.
            let cell = CellId::new(rng.below(nl.cell_count()));
            let bigger = lib.upsize(nl.cell(cell).master)?;
            nl.swap_master(lib, cell, bigger).expect("swap");
            Some("sizing")
        }
        2 => {
            // Buffer a long driven net, splitting off half its sinks.
            let net = NetId::new(rng.below(nl.net_count()));
            let n = nl.net(net);
            if n.driver.is_none() || n.sinks.len() < 2 || n.wire_length_um < 60.0 {
                return None;
            }
            let buf = lib.variant("BUF", tc_device::VtClass::Svt, 4.0)?;
            let moved: Vec<_> = n.sinks[..n.sinks.len() / 2].to_vec();
            let half = n.wire_length_um / 2.0;
            nl.insert_buffer(lib, net, &moved, buf).expect("buffer");
            nl.set_wire_length(net, half);
            Some("buffering")
        }
        3 => {
            // NDR promotion (wide/spaced route class).
            let net = NetId::new(rng.below(nl.net_count()));
            if nl.net(net).route_class != 0 {
                return None;
            }
            nl.set_route_class(net, 1 + rng.below(2) as u8);
            Some("ndr")
        }
        _ => {
            // Detour/re-route wirelength change.
            let net = NetId::new(rng.below(nl.net_count()));
            let cur = nl.net(net).wire_length_um;
            nl.set_wire_length(net, (cur * rng.uniform_in(0.6, 1.4)).max(1.0));
            Some("reroute")
        }
    }
}

struct KindStats {
    label: &'static str,
    count: usize,
    full_ns: f64,
    incr_ns: f64,
}

fn main() {
    let run_start = Instant::now();
    tc_obs::enable();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    let (lib, stack) = standard_env();
    let mut nl = tc_bench::bench_netlist(&lib, "soc_block", 2015);

    // The Fig 1 constraint: 500 ps beyond the as-generated capability.
    let probe = Constraints::single_clock(6_000.0);
    let r = Sta::new(&nl, &lib, &stack, &probe).run().expect("sta");
    let period = 6_000.0 - r.wns().value() - 500.0;
    let cons = Constraints::single_clock(period);
    println!(
        "design: {} cells, {} nets | closure period: {:.0} ps",
        nl.cell_count(),
        nl.net_count(),
        period
    );

    let mut timer = Timer::new(&nl, &lib, &stack, cons.clone()).expect("timer");

    const EDITS: usize = 40;
    let mut rng = Rng::seed_from(2015);
    let mut kinds: Vec<KindStats> = ["vt_swap", "sizing", "buffering", "ndr", "reroute"]
        .iter()
        .map(|&label| KindStats {
            label,
            count: 0,
            full_ns: 0.0,
            incr_ns: 0.0,
        })
        .collect();
    let mut total_full_ns = 0.0;
    let mut total_incr_ns = 0.0;

    let mut applied = 0usize;
    while applied < EDITS {
        let Some(label) = apply_random_eco(&mut rng, &mut nl, &lib) else {
            continue;
        };
        applied += 1;

        // Incremental answer: consume the journal, re-time the cone.
        let t0 = Instant::now();
        timer.update(&nl).expect("update");
        let incr_report = timer.report(&nl);
        let incr_ns = t0.elapsed().as_nanos() as f64;

        // From-scratch answer on the identical netlist.
        let t0 = Instant::now();
        let full_report = Sta::new(&nl, &lib, &stack, &cons).run().expect("sta");
        let full_ns = t0.elapsed().as_nanos() as f64;

        assert_eq!(
            incr_report.wns(),
            full_report.wns(),
            "WNS diverged after {label} edit {applied}"
        );
        assert_eq!(
            incr_report.tns(),
            full_report.tns(),
            "TNS diverged after {label} edit {applied}"
        );

        let k = kinds.iter_mut().find(|k| k.label == label).expect("kind");
        k.count += 1;
        k.full_ns += full_ns;
        k.incr_ns += incr_ns;
        total_full_ns += full_ns;
        total_incr_ns += incr_ns;
    }

    let rows: Vec<Vec<String>> = kinds
        .iter()
        .filter(|k| k.count > 0)
        .map(|k| {
            vec![
                k.label.to_string(),
                k.count.to_string(),
                fmt(k.full_ns / k.count as f64 / 1_000.0, 1),
                fmt(k.incr_ns / k.count as f64 / 1_000.0, 1),
                fmt(k.full_ns / k.incr_ns, 1),
            ]
        })
        .collect();
    print_table(
        "incremental vs full STA per closure-loop ECO",
        &["fix kind", "edits", "full µs", "incr µs", "speedup"],
        &rows,
    );

    let speedup = total_full_ns / total_incr_ns;
    let snap = tc_obs::snapshot();
    let recomputed = snap.counter("sta.arcs_recomputed");
    let reused = snap.counter("sta.arcs_reused");
    println!(
        "\ntotal: full {:.2} ms vs incremental {:.2} ms -> {:.1}x speedup over {EDITS} ECOs",
        total_full_ns / 1e6,
        total_incr_ns / 1e6,
        speedup
    );
    println!(
        "arcs recomputed: {recomputed} | arcs reused: {reused} ({:.1}% of the graph untouched)",
        100.0 * reused as f64 / (recomputed + reused).max(1) as f64
    );
    assert!(
        speedup >= 5.0,
        "incremental STA must be >=5x faster on the Fig 1 workload, got {speedup:.1}x"
    );

    let kind_rows: Vec<JsonValue> = kinds
        .iter()
        .filter(|k| k.count > 0)
        .map(|k| {
            JsonValue::obj([
                ("fix", JsonValue::str(k.label)),
                ("edits", JsonValue::from(k.count)),
                (
                    "mean_full_us",
                    JsonValue::from(k.full_ns / k.count as f64 / 1_000.0),
                ),
                (
                    "mean_incremental_us",
                    JsonValue::from(k.incr_ns / k.count as f64 / 1_000.0),
                ),
                ("speedup", JsonValue::from(k.full_ns / k.incr_ns)),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("table", JsonValue::str("incremental_sta")),
        ("workload", JsonValue::str("soc_block closure loop (Fig 1)")),
        ("cells", JsonValue::from(nl.cell_count())),
        ("nets", JsonValue::from(nl.net_count())),
        ("period_ps", JsonValue::from(period)),
        ("ecos", JsonValue::from(EDITS)),
        ("total_full_ms", JsonValue::from(total_full_ns / 1e6)),
        ("total_incremental_ms", JsonValue::from(total_incr_ns / 1e6)),
        ("speedup", JsonValue::from(speedup)),
        ("wns_bit_identical", JsonValue::Bool(true)),
        ("arcs_recomputed", JsonValue::from(recomputed)),
        ("arcs_reused", JsonValue::from(reused)),
        ("per_fix_kind", JsonValue::Arr(kind_rows)),
    ]);
    match write_json_sidecar("BENCH_incremental_sta", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let mut artifact = tc_obs::RunArtifact::new("tbl_incremental_sta soc_block ECO replay")
        .knob("ecos", EDITS)
        .wall_ms(run_start.elapsed().as_secs_f64() * 1e3)
        .extra("speedup", JsonValue::from(speedup))
        .extra("arcs_recomputed", JsonValue::from(recomputed))
        .extra("arcs_reused", JsonValue::from(reused))
        .extra("period_ps", JsonValue::from(period))
        .metrics(tc_obs::snapshot());
    for k in kinds.iter().filter(|k| k.count > 0) {
        artifact = artifact.iteration(JsonValue::obj([
            ("fix", JsonValue::str(k.label)),
            ("edits", JsonValue::from(k.count)),
            (
                "mean_full_us",
                JsonValue::from(k.full_ns / k.count as f64 / 1_000.0),
            ),
            (
                "mean_incremental_us",
                JsonValue::from(k.incr_ns / k.count as f64 / 1_000.0),
            ),
        ]));
    }
    match write_run_artifact("tbl_incremental_sta", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
    match write_trace_sidecars("tbl_incremental_sta") {
        Ok(Some(path)) => println!("trace: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace write failed: {e}"),
    }
    match write_prof_sidecar("tbl_incremental_sta", "tbl_incremental_sta soc_block") {
        Ok(Some(path)) => println!("profile: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("profile write failed: {e}"),
    }
}
