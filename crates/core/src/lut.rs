//! Interpolated lookup tables.
//!
//! [`Lut1`] and [`Lut2`] are the data structures behind Liberty-style NLDM
//! and LVF delay/slew tables: values sampled on a monotone axis (or axis
//! pair), evaluated by linear (bilinear) interpolation with linear
//! extrapolation beyond the sampled range — matching how production STA
//! tools treat out-of-range slews and loads.
//!
//! # Examples
//!
//! ```
//! use tc_core::lut::Lut2;
//!
//! // delay(slew, load) = 1 + 2·slew + 3·load, sampled on a 2×2 grid.
//! let lut = Lut2::new(
//!     vec![0.0, 1.0],
//!     vec![0.0, 1.0],
//!     vec![vec![1.0, 4.0], vec![3.0, 6.0]],
//! )?;
//! assert!((lut.eval(0.5, 0.5) - 3.5).abs() < 1e-12);
//! # Ok::<(), tc_core::Error>(())
//! ```

use crate::error::{Error, Result};

/// Locates `x` in the monotone axis `axis`, returning the index pair
/// `(i, i+1)` bracketing it and the interpolation fraction. Out-of-range
/// inputs clamp to the first/last segment, yielding linear extrapolation.
///
/// Queries exactly on a breakpoint return an exact fraction (`0.0`, or
/// `1.0` for the final breakpoint, which selects the last segment rather
/// than extrapolating past it) so interpolation reproduces the stored
/// sample bit-for-bit — no `(x - x0) / (x1 - x0)` rounding.
fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
    debug_assert!(axis.len() >= 2);
    let n = axis.len();
    let i = match axis.binary_search_by(|a| a.total_cmp(&x)) {
        Ok(i) if i == n - 1 => return (n - 2, 1.0),
        Ok(i) => return (i, 0.0),
        Err(i) => i.saturating_sub(1).min(n - 2),
    };
    let x0 = axis[i];
    let x1 = axis[i + 1];
    let t = (x - x0) / (x1 - x0);
    (i, t)
}

/// Endpoint-exact linear interpolation: `t == 0.0` returns `v0` and
/// `t == 1.0` returns `v1` bit-for-bit (the `v0 + t·(v1 − v0)` form
/// does not — its round trip through the difference rounds).
fn lerp(v0: f64, v1: f64, t: f64) -> f64 {
    (1.0 - t) * v0 + t * v1
}

fn validate_axis(name: &str, axis: &[f64]) -> Result<()> {
    if axis.len() < 2 {
        return Err(Error::invalid_input(format!(
            "{name} axis needs at least 2 points, got {}",
            axis.len()
        )));
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(Error::invalid_input(format!(
            "{name} axis must be strictly increasing"
        )));
    }
    if axis.iter().any(|v| !v.is_finite()) {
        return Err(Error::invalid_input(format!("{name} axis must be finite")));
    }
    Ok(())
}

/// A 1-D linearly interpolated table.
#[derive(Clone, Debug, PartialEq)]
pub struct Lut1 {
    axis: Vec<f64>,
    values: Vec<f64>,
}

impl Lut1 {
    /// Builds a table from a strictly increasing axis and matching values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the axis is shorter than 2,
    /// not strictly increasing, or the lengths mismatch.
    pub fn new(axis: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        validate_axis("lut1", &axis)?;
        if axis.len() != values.len() {
            return Err(Error::invalid_input(format!(
                "axis length {} != values length {}",
                axis.len(),
                values.len()
            )));
        }
        Ok(Lut1 { axis, values })
    }

    /// Evaluates the table at `x` with linear interpolation and linear
    /// extrapolation beyond the sampled range. Queries exactly on an
    /// axis breakpoint return the stored sample bit-for-bit.
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = bracket(&self.axis, x);
        lerp(self.values[i], self.values[i + 1], t)
    }

    /// The sampled axis.
    pub fn axis(&self) -> &[f64] {
        &self.axis
    }

    /// The sampled values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Applies `f` to every stored value, returning a new table on the
    /// same axis (used for corner/derate scaling of characterized tables).
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Lut1 {
        Lut1 {
            axis: self.axis.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

/// A 2-D bilinearly interpolated table indexed as `(row, column)`.
///
/// In Liberty terms the row axis is typically input slew and the column
/// axis output load.
#[derive(Clone, Debug, PartialEq)]
pub struct Lut2 {
    rows: Vec<f64>,
    cols: Vec<f64>,
    /// `values[r][c]` sampled at `(rows[r], cols[c])`.
    values: Vec<Vec<f64>>,
}

impl Lut2 {
    /// Builds a table from strictly increasing axes and a full value grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if either axis is invalid or the
    /// grid dimensions do not match the axes.
    pub fn new(rows: Vec<f64>, cols: Vec<f64>, values: Vec<Vec<f64>>) -> Result<Self> {
        validate_axis("row", &rows)?;
        validate_axis("column", &cols)?;
        if values.len() != rows.len() || values.iter().any(|r| r.len() != cols.len()) {
            return Err(Error::invalid_input(format!(
                "grid must be {}x{}",
                rows.len(),
                cols.len()
            )));
        }
        Ok(Lut2 { rows, cols, values })
    }

    /// Samples `f(row, col)` on the given axes to build a table — the
    /// characterization entry point used by the library generator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if either axis is invalid.
    pub fn from_fn(
        rows: Vec<f64>,
        cols: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self> {
        validate_axis("row", &rows)?;
        validate_axis("column", &cols)?;
        let values = rows
            .iter()
            .map(|&r| cols.iter().map(|&c| f(r, c)).collect())
            .collect();
        Ok(Lut2 { rows, cols, values })
    }

    /// Evaluates the table at `(row, col)` with bilinear interpolation and
    /// linear extrapolation beyond the sampled range. Queries exactly on
    /// a grid point return the stored sample bit-for-bit.
    pub fn eval(&self, row: f64, col: f64) -> f64 {
        let (i, ti) = bracket(&self.rows, row);
        let (j, tj) = bracket(&self.cols, col);
        let top = lerp(self.values[i][j], self.values[i][j + 1], tj);
        let bot = lerp(self.values[i + 1][j], self.values[i + 1][j + 1], tj);
        lerp(top, bot, ti)
    }

    /// The row (slew) axis.
    pub fn row_axis(&self) -> &[f64] {
        &self.rows
    }

    /// The column (load) axis.
    pub fn col_axis(&self) -> &[f64] {
        &self.cols
    }

    /// Applies `f` to every stored value, returning a new table on the
    /// same axes.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Lut2 {
        Lut2 {
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            values: self
                .values
                .iter()
                .map(|r| r.iter().map(|&v| f(v)).collect())
                .collect(),
        }
    }

    /// The maximum stored value (useful for sanity bounds in tests).
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut1_interpolates_and_extrapolates() {
        let lut = Lut1::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 6.0]).unwrap();
        assert!((lut.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((lut.eval(2.0) - 4.0).abs() < 1e-12);
        // Linear extrapolation off both ends.
        assert!((lut.eval(-1.0) + 2.0).abs() < 1e-12);
        assert!((lut.eval(4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn lut1_rejects_bad_axes() {
        assert!(Lut1::new(vec![0.0], vec![0.0]).is_err());
        assert!(Lut1::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Lut1::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Lut1::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn lut2_reproduces_bilinear_function_exactly() {
        // f(x,y) = 2 + 3x + 4y is reproduced exactly (it has no xy term).
        let lut = Lut2::from_fn(vec![0.0, 2.0, 5.0], vec![1.0, 4.0], |x, y| {
            2.0 + 3.0 * x + 4.0 * y
        })
        .unwrap();
        for &(x, y) in &[(0.5, 2.0), (3.0, 1.5), (-1.0, 6.0), (7.0, 0.0)] {
            let want = 2.0 + 3.0 * x + 4.0 * y;
            assert!(
                (lut.eval(x, y) - want).abs() < 1e-9,
                "f({x},{y}) = {} want {want}",
                lut.eval(x, y)
            );
        }
    }

    #[test]
    fn lut2_hits_grid_points_exactly() {
        let lut = Lut2::new(
            vec![1.0, 2.0],
            vec![10.0, 20.0, 30.0],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        )
        .unwrap();
        assert_eq!(lut.eval(1.0, 10.0), 1.0);
        assert_eq!(lut.eval(2.0, 30.0), 6.0);
        assert_eq!(lut.eval(1.0, 20.0), 2.0);
    }

    #[test]
    fn lut2_rejects_ragged_grid() {
        assert!(Lut2::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![vec![1.0, 2.0], vec![3.0]],
        )
        .is_err());
    }

    #[test]
    fn map_scales_values() {
        let lut = Lut1::new(vec![0.0, 1.0], vec![1.0, 2.0]).unwrap();
        let scaled = lut.map(|v| v * 10.0);
        assert!((scaled.eval(0.5) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn max_value_scans_grid() {
        let lut = Lut2::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![vec![1.0, 9.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(lut.max_value(), 9.0);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use crate::rng::Rng;

    fn sorted_axis(rng: &mut Rng, n: usize) -> Vec<f64> {
        let mut axis = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            x += rng.uniform_in(0.01, 10.0);
            axis.push(x);
        }
        axis
    }

    fn values(rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.uniform_in(-100.0, 100.0)).collect()
    }

    #[test]
    fn lut1_interior_values_are_bounded_by_samples() {
        let mut rng = Rng::seed_from(0x10701);
        for _ in 0..128 {
            let axis = sorted_axis(&mut rng, 6);
            let vals = values(&mut rng, 6);
            let lut = Lut1::new(axis.clone(), vals.clone()).unwrap();
            let x = axis[0] + rng.uniform() * (axis[5] - axis[0]);
            let y = lut.eval(x);
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    #[test]
    fn lut1_hits_sample_points() {
        let mut rng = Rng::seed_from(0x10702);
        for _ in 0..128 {
            let axis = sorted_axis(&mut rng, 5);
            let vals = values(&mut rng, 5);
            let idx = rng.below(5);
            let lut = Lut1::new(axis.clone(), vals.clone()).unwrap();
            assert!((lut.eval(axis[idx]) - vals[idx]).abs() < 1e-9);
        }
    }

    #[test]
    fn lut1_on_knot_queries_return_stored_samples_bit_exactly() {
        // Every breakpoint — including the LAST one, which used to go
        // through `v0 + 1.0·(v1 − v0)` and pick up rounding — must
        // reproduce its sample exactly.
        let mut rng = Rng::seed_from(0x10704);
        for _ in 0..256 {
            let n = 2 + rng.below(7);
            let axis = sorted_axis(&mut rng, n);
            let vals = values(&mut rng, n);
            let lut = Lut1::new(axis.clone(), vals.clone()).unwrap();
            for (i, &x) in axis.iter().enumerate() {
                assert_eq!(
                    lut.eval(x).to_bits(),
                    vals[i].to_bits(),
                    "knot {i} of {n}: eval({x}) = {} want {}",
                    lut.eval(x),
                    vals[i]
                );
            }
        }
    }

    #[test]
    fn lut1_below_min_and_above_max_extrapolate_linearly() {
        let mut rng = Rng::seed_from(0x10705);
        for _ in 0..128 {
            let axis = sorted_axis(&mut rng, 4);
            let vals = values(&mut rng, 4);
            let lut = Lut1::new(axis.clone(), vals.clone()).unwrap();
            // Below min: slope of the first segment.
            let x = axis[0] - rng.uniform_in(0.1, 5.0);
            let slope0 = (vals[1] - vals[0]) / (axis[1] - axis[0]);
            let want = vals[0] + slope0 * (x - axis[0]);
            assert!((lut.eval(x) - want).abs() < 1e-9 * (1.0 + want.abs()));
            // Above max: slope of the last segment.
            let x = axis[3] + rng.uniform_in(0.1, 5.0);
            let slope1 = (vals[3] - vals[2]) / (axis[3] - axis[2]);
            let want = vals[3] + slope1 * (x - axis[3]);
            assert!((lut.eval(x) - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn lut2_on_knot_queries_return_stored_samples_bit_exactly() {
        let mut rng = Rng::seed_from(0x10706);
        for _ in 0..128 {
            let nr = 2 + rng.below(4);
            let nc = 2 + rng.below(4);
            let rows = sorted_axis(&mut rng, nr);
            let cols = sorted_axis(&mut rng, nc);
            let grid: Vec<Vec<f64>> = (0..nr).map(|_| values(&mut rng, nc)).collect();
            let lut = Lut2::new(rows.clone(), cols.clone(), grid.clone()).unwrap();
            for (i, &r) in rows.iter().enumerate() {
                for (j, &c) in cols.iter().enumerate() {
                    assert_eq!(
                        lut.eval(r, c).to_bits(),
                        grid[i][j].to_bits(),
                        "grid point ({i},{j}): eval({r},{c}) = {} want {}",
                        lut.eval(r, c),
                        grid[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn lut2_out_of_range_queries_extrapolate_from_edge_segments() {
        // A bilinear (no xy term) surface extrapolates exactly, on all
        // four sides and corners.
        let mut rng = Rng::seed_from(0x10707);
        for _ in 0..128 {
            let rows = sorted_axis(&mut rng, 3);
            let cols = sorted_axis(&mut rng, 3);
            let (a, b, c) = (
                rng.uniform_in(-10.0, 10.0),
                rng.uniform_in(-10.0, 10.0),
                rng.uniform_in(-10.0, 10.0),
            );
            let lut = Lut2::from_fn(rows.clone(), cols.clone(), |x, y| a + b * x + c * y).unwrap();
            for &(dx, dy) in &[
                (-3.0, 0.0),
                (5.0, 0.0),
                (0.0, -2.0),
                (0.0, 4.0),
                (-3.0, 6.0),
            ] {
                let x = if dx < 0.0 { rows[0] + dx } else { rows[2] + dx };
                let y = if dy < 0.0 { cols[0] + dy } else { cols[2] + dy };
                let want = a + b * x + c * y;
                assert!(
                    (lut.eval(x, y) - want).abs() < 1e-6 * (1.0 + want.abs()),
                    "eval({x},{y}) = {} want {want}",
                    lut.eval(x, y)
                );
            }
        }
    }

    #[test]
    fn lut2_reproduces_separable_linear_functions() {
        let mut rng = Rng::seed_from(0x10703);
        for _ in 0..128 {
            let rows = sorted_axis(&mut rng, 4);
            let cols = sorted_axis(&mut rng, 4);
            let (a, b, c) = (
                rng.uniform_in(-10.0, 10.0),
                rng.uniform_in(-10.0, 10.0),
                rng.uniform_in(-10.0, 10.0),
            );
            let lut = Lut2::from_fn(rows.clone(), cols.clone(), |x, y| a + b * x + c * y).unwrap();
            let x = rows[0] + rng.uniform() * (rows[3] - rows[0]);
            let y = cols[0] + rng.uniform() * (cols[3] - cols[0]);
            let want = a + b * x + c * y;
            assert!((lut.eval(x, y) - want).abs() < 1e-6 * (1.0 + want.abs()));
        }
    }
}
