//! Seeded byte- and token-level mutators.
//!
//! All randomness flows through `tc_core::rng::Rng`, so a mutation
//! sequence is a pure function of the seed — any finding replays
//! bit-identically. The taxonomy (see DESIGN.md "Robustness & fuzzing"):
//!
//! * **truncate** — cut the input at a random byte;
//! * **splice** — prefix of this input + suffix of another corpus entry;
//! * **bit-flip** — flip 1–8 random bits;
//! * **span duplicate / delete** — copy or remove a random byte span;
//! * **number perturbation** — replace a numeric token with a hostile
//!   one (`1e999`, `NaN`, lone `-`, 19-digit integers, …);
//! * **token duplicate / delete** — repeat or drop a
//!   whitespace-delimited token;
//! * **nesting amplification** — inject a run of open brackets.

use tc_core::rng::Rng;

/// Hostile replacements for numeric tokens: overflow, non-finite, signs
/// without digits, precision extremes.
const NUMBER_POOL: [&str; 12] = [
    "1e999",
    "-1e999",
    "NaN",
    "inf",
    "-0",
    "999999999999999999999",
    "1e-999",
    "-1",
    "+1",
    "0x10",
    "-",
    "18446744073709551616",
];

/// Applies between 1 and 4 mutators to `input`, drawing corpus entries
/// from `pool` for splices.
pub fn mutate(rng: &mut Rng, pool: &[Vec<u8>], input: &mut Vec<u8>) {
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        mutate_once(rng, pool, input);
    }
    // Keep pathological growth bounded: mutated inputs stay comfortably
    // above any real record size but below memory-hostile territory.
    input.truncate(1 << 16);
}

fn mutate_once(rng: &mut Rng, pool: &[Vec<u8>], input: &mut Vec<u8>) {
    match rng.below(8) {
        0 => truncate(rng, input),
        1 => splice(rng, pool, input),
        2 => bit_flips(rng, input),
        3 => span_duplicate(rng, input),
        4 => span_delete(rng, input),
        5 => number_perturb(rng, input),
        6 => token_mutate(rng, input),
        _ => nesting_amplify(rng, input),
    }
}

fn truncate(rng: &mut Rng, input: &mut Vec<u8>) {
    if input.is_empty() {
        return;
    }
    let cut = rng.below(input.len() + 1);
    input.truncate(cut);
}

fn splice(rng: &mut Rng, pool: &[Vec<u8>], input: &mut Vec<u8>) {
    if pool.is_empty() {
        return;
    }
    let other = &pool[rng.below(pool.len())];
    if other.is_empty() || input.is_empty() {
        return;
    }
    let keep = rng.below(input.len() + 1);
    let from = rng.below(other.len());
    input.truncate(keep);
    input.extend_from_slice(&other[from..]);
}

fn bit_flips(rng: &mut Rng, input: &mut [u8]) {
    if input.is_empty() {
        return;
    }
    let flips = 1 + rng.below(8);
    for _ in 0..flips {
        let pos = rng.below(input.len());
        let bit = rng.below(8);
        input[pos] ^= 1 << bit;
    }
}

fn random_span(rng: &mut Rng, len: usize) -> (usize, usize) {
    let start = rng.below(len);
    let max = (len - start).min(64);
    let span = 1 + rng.below(max);
    (start, start + span)
}

fn span_duplicate(rng: &mut Rng, input: &mut Vec<u8>) {
    if input.is_empty() {
        return;
    }
    let (a, b) = random_span(rng, input.len());
    let chunk: Vec<u8> = input[a..b].to_vec();
    let at = rng.below(input.len() + 1);
    input.splice(at..at, chunk);
}

fn span_delete(rng: &mut Rng, input: &mut Vec<u8>) {
    if input.is_empty() {
        return;
    }
    let (a, b) = random_span(rng, input.len());
    input.drain(a..b);
}

/// Finds ASCII number tokens (digit runs with optional sign/dot/exponent
/// context) and swaps one for a hostile literal.
fn number_perturb(rng: &mut Rng, input: &mut Vec<u8>) {
    let is_numch = |b: u8| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E');
    let mut tokens: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < input.len() {
        if input[i].is_ascii_digit() {
            let mut start = i;
            // Pull a leading sign into the token.
            if start > 0 && matches!(input[start - 1], b'-' | b'+') {
                start -= 1;
            }
            let mut end = i;
            while end < input.len() && is_numch(input[end]) {
                end += 1;
            }
            tokens.push((start, end));
            i = end;
        } else {
            i += 1;
        }
    }
    if tokens.is_empty() {
        return;
    }
    let (a, b) = tokens[rng.below(tokens.len())];
    let replacement = NUMBER_POOL[rng.below(NUMBER_POOL.len())];
    input.splice(a..b, replacement.bytes());
}

/// Duplicates or deletes one whitespace/punctuation-delimited token.
fn token_mutate(rng: &mut Rng, input: &mut Vec<u8>) {
    let is_sep = |b: u8| b.is_ascii_whitespace() || matches!(b, b',' | b';' | b'(' | b')' | b'"');
    let mut tokens: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < input.len() {
        if is_sep(input[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < input.len() && !is_sep(input[i]) {
            i += 1;
        }
        tokens.push((start, i));
    }
    if tokens.is_empty() {
        return;
    }
    let (a, b) = tokens[rng.below(tokens.len())];
    if rng.chance(0.5) {
        let chunk: Vec<u8> = input[a..b].to_vec();
        let mut ins = Vec::with_capacity(chunk.len() + 1);
        ins.push(b' ');
        ins.extend_from_slice(&chunk);
        input.splice(b..b, ins);
    } else {
        input.drain(a..b);
    }
}

/// Injects a run of open brackets/braces/quotes — recursion-depth and
/// unterminated-construct stress.
fn nesting_amplify(rng: &mut Rng, input: &mut Vec<u8>) {
    const OPENERS: [&[u8]; 4] = [b"[", b"{", b"(", b"\""];
    let opener = OPENERS[rng.below(OPENERS.len())];
    let count = 1 + rng.below(64);
    let at = rng.below(input.len() + 1);
    let run: Vec<u8> = opener.iter().copied().cycle().take(count).collect();
    input.splice(at..at, run);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let pool = vec![b"module m (a); input a; endmodule".to_vec()];
        let run = |seed| {
            let mut rng = Rng::seed_from(seed);
            let mut x = pool[0].clone();
            for _ in 0..50 {
                mutate(&mut rng, &pool, &mut x);
            }
            x
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn mutators_handle_empty_input() {
        let mut rng = Rng::seed_from(3);
        let pool: Vec<Vec<u8>> = vec![Vec::new(), b"x".to_vec()];
        let mut x = Vec::new();
        for _ in 0..200 {
            mutate(&mut rng, &pool, &mut x);
        }
        // No panic and the size cap holds.
        assert!(x.len() <= 1 << 16);
    }
}
