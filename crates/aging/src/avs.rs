//! Closed-loop adaptive voltage scaling over a product lifetime.
//!
//! Every epoch, the controller picks the lowest supply that meets the
//! delay target given the BTI shift accumulated so far (plus a monitor
//! guardband); the device then ages *at that supply* until the next
//! epoch. Raising V to compensate aging accelerates aging — the §3.3
//! chicken-egg loop, integrated numerically here.

use tc_core::units::{Celsius, Volt};
use tc_device::{MosDevice, MosKind, Technology, VtClass};

use crate::bti::BtiModel;

/// The AVS platform: process, BTI model, rails and guardband.
#[derive(Clone, Debug)]
pub struct AvsSystem {
    /// BTI model.
    pub bti: BtiModel,
    /// Device technology.
    pub tech: Technology,
    /// Nominal supply (delay reference).
    pub v_nominal: Volt,
    /// Lowest rail the regulator can deliver.
    pub v_min: Volt,
    /// Highest rail.
    pub v_max: Volt,
    /// Stress/operating temperature.
    pub temp: Celsius,
    /// Monitor tracking-error guardband (fraction of delay).
    pub guardband: f64,
}

impl AvsSystem {
    /// A 28 nm-class platform.
    pub fn nominal_28nm() -> Self {
        AvsSystem {
            bti: BtiModel::nominal_28nm(),
            tech: Technology::planar_28nm(),
            v_nominal: Volt::new(0.9),
            v_min: Volt::new(0.72),
            v_max: Volt::new(1.08),
            temp: Celsius::new(105.0),
            guardband: 0.02,
        }
    }

    /// Delay multiplier of a reference (SVT) critical path at supply `v`
    /// with threshold shift `dvt`, normalized to (v_nominal, fresh).
    pub fn delay_factor(&self, v: Volt, dvt: f64) -> f64 {
        let fresh = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
        let aged = fresh.aged(dvt);
        let d = |dev: &MosDevice, vv: Volt| vv.value() / dev.idsat(&self.tech, vv, self.temp);
        d(&aged, v) / d(&fresh, self.v_nominal)
    }

    /// Minimal supply meeting `speed · delay_factor(v, dvt) · (1+gb) ≤ 1`,
    /// clamped to the rails. `speed` < 1 means the design was sized
    /// faster than the reference. Returns `(v, met)`.
    pub fn required_voltage(&self, speed: f64, dvt: f64) -> (Volt, bool) {
        let target_ok = |v: Volt| speed * self.delay_factor(v, dvt) * (1.0 + self.guardband) <= 1.0;
        if target_ok(self.v_min) {
            return (self.v_min, true);
        }
        if !target_ok(self.v_max) {
            return (self.v_max, false);
        }
        let (mut lo, mut hi) = (self.v_min.value(), self.v_max.value());
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if target_ok(Volt::new(mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (Volt::new(hi), true)
    }
}

/// A simulated lifetime: the AVS voltage schedule and its costs.
#[derive(Clone, Debug)]
pub struct AvsTrace {
    /// Epoch boundaries, years.
    pub times: Vec<f64>,
    /// Supply chosen at each epoch.
    pub voltages: Vec<Volt>,
    /// Accumulated ΔVt entering each epoch.
    pub dvt: Vec<f64>,
    /// Whether the target was met at every epoch.
    pub always_met: bool,
}

impl AvsTrace {
    /// Time-weighted average supply, V.
    pub fn average_voltage(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..self.voltages.len() {
            let dt = self.times[i + 1] - self.times[i];
            num += self.voltages[i].value() * dt;
            den += dt;
        }
        num / den
    }

    /// Time-weighted average power factor relative to operating the
    /// reference design at nominal: `w_dyn·(V/V₀)² + w_leak·leak(V)`
    /// with `w_dyn + w_leak = 1`.
    pub fn average_power(&self, sys: &AvsSystem, w_dyn: f64, w_leak: f64) -> f64 {
        let v0 = sys.v_nominal.value();
        let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
        let leak0 = dev.leakage(&sys.tech, sys.v_nominal, sys.temp) * v0;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..self.voltages.len() {
            let dt = self.times[i + 1] - self.times[i];
            let v = self.voltages[i].value();
            // Aged devices leak less (higher Vt).
            let aged = dev.aged(self.dvt[i]);
            let leak = aged.leakage(&sys.tech, self.voltages[i], sys.temp) * v;
            let p = w_dyn * (v / v0).powi(2) + w_leak * leak / leak0;
            num += p * dt;
            den += dt;
        }
        num / den
    }

    /// Supply at end of life.
    pub fn final_voltage(&self) -> Volt {
        *self.voltages.last().expect("non-empty trace")
    }
}

/// Simulates `years` of closed-loop AVS operation for a design with the
/// given speed factor, using log-spaced epochs (aging is front-loaded).
pub fn simulate_lifetime(sys: &AvsSystem, speed: f64, years: f64, steps: usize) -> AvsTrace {
    // Log-spaced epoch boundaries from ~3 days to end of life.
    let t0 = 0.01;
    let mut times = vec![0.0];
    for i in 0..steps {
        let f = i as f64 / (steps - 1) as f64;
        times.push(t0 * (years / t0).powf(f));
    }
    let mut voltages = Vec::with_capacity(steps);
    let mut dvts = Vec::with_capacity(steps);
    let mut dvt = 0.0;
    let mut always_met = true;
    for i in 0..steps {
        let (v, met) = sys.required_voltage(speed, dvt);
        always_met &= met;
        voltages.push(v);
        dvts.push(dvt);
        // Age over this epoch at the chosen supply. Power-law aging with
        // a time-varying stress is integrated by matching an equivalent
        // prior stress time at the current voltage.
        let eq_years = sys.bti.years_for(dvt.max(1e-6), v, sys.temp);
        let span = times[i + 1] - times[i];
        dvt += sys.bti.increment(eq_years, eq_years + span, v, sys.temp);
    }
    AvsTrace {
        times,
        voltages,
        dvt: dvts,
        always_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> AvsSystem {
        AvsSystem::nominal_28nm()
    }

    #[test]
    fn delay_factor_reference_point_is_one() {
        let s = sys();
        assert!((s.delay_factor(s.v_nominal, 0.0) - 1.0).abs() < 1e-12);
        assert!(s.delay_factor(Volt::new(0.8), 0.0) > 1.0);
        assert!(s.delay_factor(Volt::new(1.0), 0.0) < 1.0);
        assert!(s.delay_factor(s.v_nominal, 0.04) > 1.0);
    }

    #[test]
    fn required_voltage_rises_with_aging() {
        let s = sys();
        let (v0, met0) = s.required_voltage(1.0, 0.0);
        let (v1, met1) = s.required_voltage(1.0, 0.04);
        assert!(met0 && met1);
        assert!(v1 > v0, "aged part needs more supply: {v0} vs {v1}");
    }

    #[test]
    fn faster_design_starts_at_lower_voltage() {
        let s = sys();
        let (v_fast, _) = s.required_voltage(0.9, 0.0);
        let (v_ref, _) = s.required_voltage(1.0, 0.0);
        assert!(v_fast < v_ref);
    }

    #[test]
    fn lifetime_voltage_schedule_is_nondecreasing() {
        let s = sys();
        let trace = simulate_lifetime(&s, 0.97, 10.0, 30);
        assert!(trace.always_met);
        for w in trace.voltages.windows(2) {
            assert!(w[1] >= w[0] - Volt::new(1e-6), "AVS only raises V");
        }
        assert!(trace.final_voltage() > trace.voltages[0]);
        // ΔVt accumulates to tens of mV.
        let end = *trace.dvt.last().unwrap();
        assert!(end > 0.015 && end < 0.12, "ΔVt(10y) = {end}");
    }

    #[test]
    fn oversized_design_saves_lifetime_power() {
        let s = sys();
        let margin = simulate_lifetime(&s, 0.92, 10.0, 30);
        let tight = simulate_lifetime(&s, 1.0, 10.0, 30);
        assert!(margin.average_voltage() < tight.average_voltage());
        assert!(margin.average_power(&s, 0.7, 0.3) < tight.average_power(&s, 0.7, 0.3));
    }
}
