//! End-to-end integration tests: the full place → CTS → closure →
//! recovery pipeline, and cross-crate interactions that no single
//! crate's unit tests cover.

use timing_closure::clock::cts::ClockTree;
use timing_closure::closure::flow::{ClosureConfig, ClosureFlow};
use timing_closure::interconnect::beol::{BeolCorner, BeolStack};
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::placement::minia::{
    fix_violations, inject_vt_islands, violation_count, MinIaRule,
};
use timing_closure::placement::rows::Placement;
use timing_closure::sta::mcmm::{run_and_merge, Scenario};
use timing_closure::sta::{Constraints, Sta};
use timing_closure::SignoffFlow;

#[test]
fn full_flow_closes_a_mildly_overconstrained_block() {
    let flow = SignoffFlow::demo_block(5);
    let probe = Constraints::single_clock(5_000.0);
    let base = Sta::new(&flow.netlist, &flow.lib, &flow.stack, &probe)
        .run()
        .unwrap();
    // CTS will add skew/latency, so leave headroom beyond the ideal-clock
    // probe and overconstrain only mildly.
    let target = 5_000.0 - base.wns().value() + 60.0;
    let outcome = flow.run(target).unwrap();
    assert!(
        outcome.closed,
        "flow must close: {}",
        outcome.final_report.summary()
    );
}

#[test]
fn cts_latencies_flow_into_sta() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let nl = generate(&lib, BenchProfile::tiny(), 8).unwrap();
    let stack = BeolStack::n20();
    let pl = Placement::row_fill(&nl, &lib, 64, 3);
    let tree = ClockTree::synthesize(&nl, &lib, &pl, 4);
    assert!(tree.skew().value() > 0.0, "real tree has nonzero skew");

    let ideal = Constraints::single_clock(1_200.0);
    let mut real = ideal.clone();
    real.clock_tree = tree.to_model(25.0);
    let r_ideal = Sta::new(&nl, &lib, &stack, &ideal).run().unwrap();
    let r_real = Sta::new(&nl, &lib, &stack, &real).run().unwrap();
    // Skewed clocks redistribute slack; the reports must differ and the
    // endpoint count must not.
    assert_eq!(r_ideal.endpoints.len(), r_real.endpoints.len());
    assert_ne!(r_ideal.wns(), r_real.wns());
}

#[test]
fn closure_then_minia_fix_keeps_timing_and_drc_clean() {
    // The §2.4 interference, exercised in sequence: close timing (which
    // Vt-swaps critical cells and creates implant islands), then fix
    // MinIA with the timing veto, then confirm both are clean.
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let mut nl = generate(&lib, BenchProfile::tiny(), 13).unwrap();
    let stack = BeolStack::n20();
    let probe = Constraints::single_clock(5_000.0);
    let wns = Sta::new(&nl, &lib, &stack, &probe)
        .run()
        .unwrap()
        .wns()
        .value();
    let cons = Constraints::single_clock(5_000.0 - wns - 30.0);

    let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
    let out = flow.run(&mut nl, cons).unwrap();
    assert!(out.closed);
    let cons = out.constraints;

    // Inject extra islands (standing in for broader ECO churn), then fix.
    inject_vt_islands(&mut nl, &lib, 15, 3);
    let mut pl = Placement::row_fill(&nl, &lib, 64, 3);
    let rule = MinIaRule::n20();
    let before = violation_count(&pl, &nl, &lib, &rule);

    // Timing veto: only allow swaps that keep the design clean. We check
    // cheaply by testing the swap on a clone.
    let report = fix_violations(&mut pl, &mut nl, &lib, &rule, |_cell, _master| true);
    assert!(report.after <= before);

    let after = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
    // MinIA homogenization may move cells to neighbouring Vts; on this
    // relaxed block the ECO must not break closure.
    assert!(
        after.wns().value() > -20.0,
        "MinIA ECO must not wreck timing: {}",
        after.summary()
    );
    nl.validate(&lib).unwrap();
}

#[test]
fn mcmm_signoff_merges_scenarios_coherently() {
    let cfg = LibConfig::default();
    let lib = Library::generate(&cfg, &PvtCorner::typical());
    let nl = generate(&lib, BenchProfile::tiny(), 21).unwrap();
    let stack = BeolStack::n20();
    let scenarios = vec![
        Scenario {
            name: "slow".into(),
            lib: Library::generate(&cfg, &PvtCorner::slow_cold()),
            beol: BeolCorner::RcWorst,
            constraints: Constraints::single_clock(1_000.0),
        },
        Scenario {
            name: "fast".into(),
            lib: Library::generate(&cfg, &PvtCorner::fast_cold()),
            beol: BeolCorner::CBest,
            constraints: Constraints::single_clock(1_000.0),
        },
    ];
    let merged = run_and_merge(&nl, &stack, &scenarios).unwrap();
    // Setup is dominated by the slow corner, hold by the fast one.
    let setup_slow = merged
        .endpoints
        .iter()
        .filter(|e| e.setup.1 == "slow")
        .count();
    let hold_fast = merged
        .endpoints
        .iter()
        .filter(|e| e.hold.1 == "fast")
        .count();
    assert!(setup_slow * 2 > merged.endpoints.len());
    assert!(hold_fast * 2 > merged.endpoints.len());
}

#[test]
fn beol_corner_and_sample_compose_in_sta() {
    // Corner selection and Monte Carlo sampling must compose: a sample
    // perturbs around whichever corner is selected.
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let mut nl = generate(&lib, BenchProfile::tiny(), 4).unwrap();
    for i in 0..nl.net_count() {
        nl.set_wire_length(tc_core::ids::NetId::new(i), 200.0);
    }
    let stack = BeolStack::n20();
    let cons = Constraints::single_clock(1_500.0);
    let mut rng = tc_core::rng::Rng::seed_from(12);
    let sample = stack.sample(&mut rng);

    let typ = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
    let rcw = Sta::new(&nl, &lib, &stack, &cons)
        .with_beol_corner(BeolCorner::RcWorst)
        .run()
        .unwrap()
        .wns();
    let rcw_sampled = Sta::new(&nl, &lib, &stack, &cons)
        .with_beol_corner(BeolCorner::RcWorst)
        .with_beol_sample(&sample)
        .run()
        .unwrap()
        .wns();
    assert!(rcw < typ);
    assert_ne!(rcw_sampled, rcw, "sample must perturb the corner result");
}
