//! The historical arc of timing closure as data: Fig 2's old-vs-new
//! feature matrix and Fig 3's care-abouts-by-node timeline.

use std::fmt;

/// One timing-closure concern and the node range where it bites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CareAbout {
    /// Concern name.
    pub name: &'static str,
    /// First node (nm) at which it becomes a signoff care-about.
    pub first_node_nm: u32,
    /// Brief description.
    pub note: &'static str,
}

/// Fig 3's sampling of care-abouts, ordered by onset node (larger nm =
/// earlier era).
pub fn care_abouts() -> Vec<CareAbout> {
    vec![
        CareAbout {
            name: "Noise/SI",
            first_node_nm: 90,
            note: "coupling delta delay and glitch",
        },
        CareAbout {
            name: "MCMM",
            first_node_nm: 90,
            note: "multi-corner multi-mode analysis",
        },
        CareAbout {
            name: "Max transition",
            first_node_nm: 90,
            note: "slew limits as electrical DRC",
        },
        CareAbout {
            name: "EM",
            first_node_nm: 90,
            note: "electromigration limits on signal/clock",
        },
        CareAbout {
            name: "BTI aging",
            first_node_nm: 65,
            note: "NBTI/PBTI Vt drift over lifetime",
        },
        CareAbout {
            name: "Temperature inversion",
            first_node_nm: 65,
            note: "slower cold at low VDD",
        },
        CareAbout {
            name: "AOCV",
            first_node_nm: 40,
            note: "stage/distance-based derates",
        },
        CareAbout {
            name: "PBA",
            first_node_nm: 40,
            note: "path-based pessimism reduction",
        },
        CareAbout {
            name: "Fixed-margin spec",
            first_node_nm: 40,
            note: "flat margins defined per corner",
        },
        CareAbout {
            name: "Multi-patterning",
            first_node_nm: 20,
            note: "LELE/SADP corner proliferation",
        },
        CareAbout {
            name: "MOL/BEOL resistance",
            first_node_nm: 20,
            note: "middle/back-end R dominance",
        },
        CareAbout {
            name: "Dynamic IR in timing",
            first_node_nm: 20,
            note: "-dynamic analysis options",
        },
        CareAbout {
            name: "Cell-based POCV",
            first_node_nm: 20,
            note: "per-cell sigma models",
        },
        CareAbout {
            name: "Min implant area",
            first_node_nm: 20,
            note: "Vt-swap/placement interference",
        },
        CareAbout {
            name: "Fill effects",
            first_node_nm: 16,
            note: "metal fill capacitance in timing",
        },
        CareAbout {
            name: "BEOL/MOL variation",
            first_node_nm: 16,
            note: "per-layer corners and TBCs",
        },
        CareAbout {
            name: "Signoff with AVS",
            first_node_nm: 16,
            note: "typical-corner setup closure",
        },
        CareAbout {
            name: "LVF",
            first_node_nm: 16,
            note: "per-(slew,load) sigma tables",
        },
        CareAbout {
            name: "MIS",
            first_node_nm: 16,
            note: "multi-input switching margins",
        },
        CareAbout {
            name: "Physically-aware ECO",
            first_node_nm: 16,
            note: "legal-location timing fixes",
        },
        CareAbout {
            name: "Self-heating",
            first_node_nm: 10,
            note: "FinFET thermal/reliability coupling",
        },
        CareAbout {
            name: "SAQP variation",
            first_node_nm: 10,
            note: "quadruple-patterning CD classes",
        },
    ]
}

/// Care-abouts active at a given node.
pub fn active_at_node(node_nm: u32) -> Vec<CareAbout> {
    care_abouts()
        .into_iter()
        .filter(|c| c.first_node_nm >= node_nm)
        .collect()
}

/// One row of Fig 2's "old vs new" matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EraRow {
    /// Aspect of the flow.
    pub aspect: &'static str,
    /// The 2005-era (65 nm) answer.
    pub old: &'static str,
    /// The 2015-era (16/14 nm) answer.
    pub new: &'static str,
}

impl fmt::Display for EraRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<22} | {:<28} | {}", self.aspect, self.old, self.new)
    }
}

/// Fig 2's old-vs-new sketch as a table.
pub fn old_vs_new() -> Vec<EraRow> {
    vec![
        EraRow {
            aspect: "Modes",
            old: "1 functional mode",
            new: "MCMM: hundreds of scenarios",
        },
        EraRow {
            aspect: "Checks",
            old: "setup/hold + SI",
            new: "+ noise closure, aging, dynamic IR",
        },
        EraRow {
            aspect: "Delay model",
            old: "NLDM",
            new: "cell-POCV / LVF sigma tables",
        },
        EraRow {
            aspect: "BEOL corners",
            old: "Cw only",
            new: "exploding corners, cross-corners, TBC reduction",
        },
        EraRow {
            aspect: "Margins",
            old: "single flat margin",
            new: "flat margin selection per corner; AVS credit",
        },
        EraRow {
            aspect: "Supply",
            old: "fixed VDD",
            new: "wide-range AVS (0.46-1.25 V), overdrive signoff",
        },
        EraRow {
            aspect: "Optimization",
            old: "post-route Vt swap is free",
            new: "place/opt interference (MinIA), mask-aware",
        },
        EraRow {
            aspect: "Patterning",
            old: "single exposure",
            new: "multi-patterning color/overlay corners",
        },
        EraRow {
            aspect: "Analysis style",
            old: "graph-based (gba)",
            new: "path-based (pba) with noise, earlier in flow",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_accumulates_monotonically() {
        // Every node inherits all older care-abouts: active set grows.
        let n65 = active_at_node(65).len();
        let n20 = active_at_node(20).len();
        let n10 = active_at_node(10).len();
        assert!(n65 < n20 && n20 < n10);
        assert_eq!(active_at_node(10).len(), care_abouts().len());
    }

    #[test]
    fn known_onsets() {
        let all = care_abouts();
        let lvf = all.iter().find(|c| c.name == "LVF").unwrap();
        assert_eq!(lvf.first_node_nm, 16);
        let aocv = all.iter().find(|c| c.name == "AOCV").unwrap();
        assert_eq!(aocv.first_node_nm, 40);
        // MIS is *not* active at 40 nm.
        assert!(active_at_node(40).iter().all(|c| c.name != "MIS"));
    }

    #[test]
    fn matrix_renders() {
        let rows = old_vs_new();
        assert!(rows.len() >= 8);
        let s = rows[0].to_string();
        assert!(s.contains('|'));
        assert!(s.contains("MCMM"));
    }
}
