//! §3.1 — variation-model accuracy ladder: flat OCV, AOCV, POCV and LVF
//! predictions of the ±3σ path delay vs Monte Carlo ground truth. The
//! paper's conclusion to reproduce: LVF tracks MC best (and handles the
//! non-Gaussian late/early split); the relative-margin formats leave
//! structure on the table.

use tc_bench::{fmt, print_table};
use tc_liberty::{AocvTable, PocvSigma};
use tc_variation::mc::PathModel;
use tc_variation::models::model_accuracy;

fn main() {
    let aocv = AocvTable::from_stage_sigma(0.05);
    let pocv = PocvSigma::standard();

    let mut rows = Vec::new();
    for (label, stages, sigma, skew) in [
        ("short, symmetric", 4usize, 0.05, 0.0),
        ("short, skewed", 4, 0.06, 4.0),
        ("medium, skewed", 12, 0.06, 4.0),
        ("deep, skewed", 24, 0.05, 3.0),
        ("deep, symmetric", 32, 0.05, 0.0),
    ] {
        let path = PathModel::uniform(stages, 20.0, sigma, skew);
        let row = model_accuracy(&path, &aocv, &pocv, 60_000, 2015);
        let (e_flat, e_aocv, e_pocv, e_lvf) = row.errors_pct();
        rows.push(vec![
            label.to_string(),
            stages.to_string(),
            fmt(row.mc_late, 1),
            fmt(e_flat, 2) + "%",
            fmt(e_aocv, 2) + "%",
            fmt(e_pocv, 2) + "%",
            fmt(e_lvf, 2) + "%",
        ]);
    }
    print_table(
        "Late (+3σ) path-delay prediction error vs Monte Carlo truth",
        &[
            "path",
            "stages",
            "MC +3σ (ps)",
            "flat OCV",
            "AOCV",
            "POCV",
            "LVF",
        ],
        &rows,
    );

    // The early side: only LVF's split sigmas capture the asymmetry.
    let path = PathModel::uniform(12, 20.0, 0.06, 4.0);
    let row = model_accuracy(&path, &aocv, &pocv, 60_000, 2016);
    println!(
        "\nearly (−3σ) on the skewed 12-stage path: MC {:.1} ps | LVF-early {:.1} ps ({:+.2}%)",
        row.mc_early,
        row.lvf_early,
        100.0 * (row.lvf_early - row.mc_early) / row.mc_early
    );
    println!(
        "late-tail excess over early deficit: {:.1} ps vs {:.1} ps (Fig 7's asymmetry)",
        row.mc_late - row.nominal,
        row.nominal - row.mc_early
    );
}
