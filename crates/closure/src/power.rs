//! Post-closure leakage recovery.
//!
//! Once timing is met, cells with slack to spare are walked back *down*
//! the Vt ladder (LVT → SVT → HVT), cutting leakage exponentially at
//! zero footprint cost. This is the mirror image of the Vt-swap timing
//! fix — and the step MinIA rules interfere with at 20 nm (§2.4), which
//! is why the pass takes a placement veto.

use tc_core::error::Result;
use tc_core::ids::CellId;
use tc_core::units::Ps;
use tc_interconnect::BeolStack;
use tc_liberty::Library;
use tc_netlist::Netlist;
use tc_sta::{Constraints, Sta};

/// Result of a leakage-recovery pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LeakageRecovery {
    /// Cells moved to a slower Vt.
    pub swaps: usize,
    /// Leakage before, µW.
    pub leakage_before_uw: f64,
    /// Leakage after, µW.
    pub leakage_after_uw: f64,
    /// WNS after (must remain non-negative).
    pub wns_after: Ps,
}

impl LeakageRecovery {
    /// Fractional leakage saving.
    pub fn saving(&self) -> f64 {
        if self.leakage_before_uw <= 0.0 {
            0.0
        } else {
            1.0 - self.leakage_after_uw / self.leakage_before_uw
        }
    }
}

/// Walks non-critical cells down the Vt ladder in batches, keeping each
/// batch only if timing stays clean. `placement_veto` returns `false`
/// for swaps the placement (MinIA) cannot absorb.
///
/// # Errors
///
/// Propagates STA failures.
pub fn recover_leakage(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    batch: usize,
    mut placement_veto: impl FnMut(CellId) -> bool,
) -> Result<LeakageRecovery> {
    let leakage_before_uw = nl.total_leakage_uw(lib);
    let base = Sta::new(nl, lib, stack, cons).run()?;
    if !base.is_clean() {
        return Ok(LeakageRecovery {
            swaps: 0,
            leakage_before_uw,
            leakage_after_uw: leakage_before_uw,
            wns_after: base.wns(),
        });
    }

    // Candidates: leakiest first (biggest payoff per swap).
    let mut candidates: Vec<CellId> = (0..nl.cell_count()).map(CellId::new).collect();
    candidates.sort_by(|&a, &b| {
        let la = lib.cell(nl.cell(a).master).leakage_uw;
        let lb = lib.cell(nl.cell(b).master).leakage_uw;
        lb.total_cmp(&la)
    });

    let mut swaps = 0;
    let mut idx = 0;
    let mut cur_batch = batch.max(1);
    while idx < candidates.len() {
        // Try a batch.
        let mut applied: Vec<(CellId, tc_core::ids::LibCellId)> = Vec::new();
        let start_idx = idx;
        while applied.len() < cur_batch && idx < candidates.len() {
            let c = candidates[idx];
            idx += 1;
            if !placement_veto(c) {
                continue;
            }
            if let Some(slower) = lib.vt_slower(nl.cell(c).master) {
                let old = nl.cell(c).master;
                nl.swap_master(lib, c, slower)?;
                applied.push((c, old));
            }
        }
        if applied.is_empty() {
            break;
        }
        let report = Sta::new(nl, lib, stack, cons).run()?;
        if report.is_clean() {
            swaps += applied.len();
        } else {
            // Roll the batch back. A failed large batch often hides many
            // individually-safe swaps: halve the batch and retry the same
            // candidates; only stop once single swaps fail.
            for &(c, old) in applied.iter().rev() {
                nl.swap_master(lib, c, old)?;
            }
            if cur_batch == 1 {
                break;
            }
            cur_batch /= 2;
            idx = start_idx;
        }
    }

    let final_report = Sta::new(nl, lib, stack, cons).run()?;
    Ok(LeakageRecovery {
        swaps,
        leakage_before_uw,
        leakage_after_uw: nl.total_leakage_uw(lib),
        wns_after: final_report.wns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env() -> (Library, BeolStack, Netlist) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 44).unwrap();
        (lib, BeolStack::n20(), nl)
    }

    #[test]
    fn recovery_cuts_leakage_without_breaking_timing() {
        let (lib, stack, mut nl) = env();
        let cons = Constraints::single_clock(3_000.0); // generous
        let rec = recover_leakage(&mut nl, &lib, &stack, &cons, 20, |_| true).unwrap();
        assert!(rec.swaps > 0, "relaxed design must allow downswaps");
        assert!(
            rec.saving() > 0.2,
            "HVT swap should cut leakage hard: {:.1}%",
            100.0 * rec.saving()
        );
        assert!(rec.wns_after >= Ps::ZERO, "timing must stay clean");
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn tight_timing_limits_recovery() {
        let (lib, stack, mut nl) = env();
        // Find a just-passing period.
        let probe = Constraints::single_clock(5_000.0);
        let r = Sta::new(&nl, &lib, &stack, &probe).run().unwrap();
        let tight = Constraints::single_clock(5_000.0 - r.wns().value() + 5.0);
        let rec_tight = recover_leakage(&mut nl, &lib, &stack, &tight, 20, |_| true).unwrap();
        let mut nl2 = generate(&lib, BenchProfile::tiny(), 44).unwrap();
        let relaxed = Constraints::single_clock(3_000.0);
        let rec_relaxed = recover_leakage(&mut nl2, &lib, &stack, &relaxed, 20, |_| true).unwrap();
        assert!(
            rec_relaxed.saving() > rec_tight.saving(),
            "slack buys leakage: {:.2} vs {:.2}",
            rec_relaxed.saving(),
            rec_tight.saving()
        );
        assert!(rec_tight.wns_after >= Ps::ZERO);
    }

    #[test]
    fn violating_design_is_left_alone() {
        let (lib, stack, mut nl) = env();
        let cons = Constraints::single_clock(100.0); // hopeless
        let rec = recover_leakage(&mut nl, &lib, &stack, &cons, 20, |_| true).unwrap();
        assert_eq!(rec.swaps, 0);
        assert_eq!(rec.leakage_before_uw, rec.leakage_after_uw);
    }

    #[test]
    fn veto_gates_swaps() {
        let (lib, stack, mut nl) = env();
        let cons = Constraints::single_clock(3_000.0);
        let rec = recover_leakage(&mut nl, &lib, &stack, &cons, 20, |_| false).unwrap();
        assert_eq!(rec.swaps, 0);
    }
}
