//! Clock-related margin analysis: the flat jitter "rug" vs its
//! decomposition (§1.3 footnote 5, §3.4), CTS skew across PVT corners
//! (the MCMM clock-synthesis burden of §1.2), and useful skew as a
//! closure lever.

use tc_bench::{fmt, print_table, standard_env};
use tc_clock::cts::ClockTree;
use tc_clock::jitter::{CheckKind, JitterModel};
use tc_clock::useful_skew::optimize_useful_skew;
use tc_core::units::Ps;
use tc_liberty::PvtCorner;
use tc_placement::rows::Placement;
use tc_sta::{Constraints, Sta};

fn main() {
    // 1. Jitter decomposition.
    let j = JitterModel::typical();
    let rows = vec![
        vec![
            "flat rug (linear sum)".to_string(),
            fmt(j.flat_margin().value(), 1),
            fmt(j.flat_margin().value(), 1),
        ],
        vec![
            "decomposed (RSS + c2c PLL)".to_string(),
            fmt(j.decomposed_margin(CheckKind::Setup).value(), 1),
            fmt(j.decomposed_margin(CheckKind::Hold).value(), 1),
        ],
        vec![
            "recovered".to_string(),
            fmt(j.recovered(CheckKind::Setup).value(), 1),
            fmt(j.recovered(CheckKind::Hold).value(), 1),
        ],
    ];
    print_table(
        "Jitter margin: the single rug vs detangled components (ps)",
        &["margining", "setup", "hold"],
        &rows,
    );

    // 2. CTS skew across corners.
    let (lib, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib, "soc_block", 7);
    let pl = Placement::row_fill(&nl, &lib, 256, 7);
    let tree = ClockTree::synthesize(&nl, &lib, &pl, 8);
    println!(
        "\nCTS over {} flops: {} levels, common latency {:.1} ps, skew {:.1} ps",
        tree.leaf.len(),
        tree.levels,
        tree.common.value(),
        tree.skew().value()
    );
    let mut rows = Vec::new();
    for (label, corner) in [
        ("TT 0.90V 25C", PvtCorner::typical()),
        ("SSG 0.81V -30C", PvtCorner::slow_cold()),
        ("SSG 0.81V 125C", PvtCorner::slow_hot()),
        ("FFG 0.99V -30C", PvtCorner::fast_cold()),
    ] {
        rows.push(vec![
            label.to_string(),
            fmt(tree.skew_at_corner(&lib, &corner).value(), 2),
        ]);
    }
    print_table(
        "Skew of the same tree re-evaluated per corner (§1.2 MCMM-CTS)",
        &["corner", "skew (ps)"],
        &rows,
    );

    // 3. Useful skew on a violating configuration.
    let probe = Constraints::single_clock(6_000.0);
    let wns = Sta::new(&nl, &lib, &stack, &probe)
        .run()
        .expect("sta")
        .wns()
        .value();
    let cons = Constraints::single_clock(6_000.0 - wns - 25.0);
    let res = optimize_useful_skew(&nl, &lib, &stack, &cons, 12, Ps::new(8.0)).expect("skew");
    println!(
        "\nuseful skew at 25 ps overconstraint: WNS {:.1} → {:.1} ps with {} leaf moves",
        res.wns_before.value(),
        res.wns_after.value(),
        res.moves.len()
    );
}
