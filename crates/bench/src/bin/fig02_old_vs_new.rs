//! **Fig 2** — the "old vs new" feature matrix of timing closure
//! (analysis, modeling and signoff criteria, 65 nm era vs 16/14 nm era).

use tc_bench::print_table;
use tc_signoff::era::old_vs_new;

fn main() {
    let rows: Vec<Vec<String>> = old_vs_new()
        .iter()
        .map(|r| vec![r.aspect.to_string(), r.old.to_string(), r.new.to_string()])
        .collect();
    print_table(
        "Fig 2: timing closure, OLD vs NEW",
        &["aspect", "old (≈65 nm)", "new (≈16/14 nm)"],
        &rows,
    );
}
