//! Waveform measurements: threshold crossings, delays and slews.
//!
//! Conventions match production characterization flows: delays are
//! measured between 50% crossings, transition times between the 10% and
//! 90% points (scaled by 1/0.8 to a full-swing-equivalent slew when the
//! Liberty trip points differ).

use tc_core::units::Ps;

/// A sampled voltage waveform.
#[derive(Clone, Debug, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

/// Transition direction selector for crossing searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// Value crosses the threshold going up.
    Rise,
    /// Value crosses the threshold going down.
    Fall,
    /// Either direction.
    Any,
}

impl Waveform {
    /// Wraps sampled data.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or fewer than 2 samples are provided.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "waveform length mismatch");
        assert!(times.len() >= 2, "waveform needs at least 2 samples");
        Waveform { times, values }
    }

    /// Sample times (ps).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values (V).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Linearly interpolated value at time `t`; clamps beyond the ends.
    pub fn at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        let idx = self.times.partition_point(|&x| x < t).max(1);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t1 <= t0 {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Final value.
    pub fn last(&self) -> f64 {
        *self.values.last().unwrap()
    }

    /// First time at/after `t_from` where the waveform crosses `thresh`
    /// in the requested direction, by linear interpolation.
    pub fn crossing(&self, thresh: f64, edge: Edge, t_from: f64) -> Option<f64> {
        for i in 1..self.times.len() {
            if self.times[i] < t_from {
                continue;
            }
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let rises = v0 < thresh && v1 >= thresh;
            let falls = v0 > thresh && v1 <= thresh;
            let hit = match edge {
                Edge::Rise => rises,
                Edge::Fall => falls,
                Edge::Any => rises || falls,
            };
            if hit {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let t = if (v1 - v0).abs() < 1e-15 {
                    t1
                } else {
                    t0 + (t1 - t0) * (thresh - v0) / (v1 - v0)
                };
                if t >= t_from {
                    return Some(t);
                }
            }
        }
        None
    }
}

/// First crossing of `thresh` in the given direction at/after `t_from`.
pub fn cross_time(w: &Waveform, thresh: f64, edge: Edge, t_from: f64) -> Option<f64> {
    w.crossing(thresh, edge, t_from)
}

/// 50%-to-50% delay from an input transition to the next output
/// transition of the given direction, both referenced to `vdd/2`.
pub fn delay_between(
    input: &Waveform,
    in_edge: Edge,
    output: &Waveform,
    out_edge: Edge,
    vdd: f64,
    t_from: f64,
) -> Option<Ps> {
    let t_in = input.crossing(0.5 * vdd, in_edge, t_from)?;
    let t_out = output.crossing(0.5 * vdd, out_edge, t_in)?;
    Some(Ps::new(t_out - t_in))
}

/// 10%–90% transition time of the first output edge at/after `t_from`,
/// scaled by 1/0.8 to full-swing equivalent.
pub fn slew_10_90(w: &Waveform, edge: Edge, vdd: f64, t_from: f64) -> Option<Ps> {
    let (first, second) = match edge {
        Edge::Rise => (0.1 * vdd, 0.9 * vdd),
        Edge::Fall => (0.9 * vdd, 0.1 * vdd),
        Edge::Any => return None,
    };
    let e = match edge {
        Edge::Rise => Edge::Rise,
        _ => Edge::Fall,
    };
    let t1 = w.crossing(first, e, t_from)?;
    let t2 = w.crossing(second, e, t1)?;
    Some(Ps::new((t2 - t1) / 0.8))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_wave() -> Waveform {
        // 0 V until t=10, linear to 1 V at t=30, flat after.
        Waveform::new(vec![0.0, 10.0, 30.0, 50.0], vec![0.0, 0.0, 1.0, 1.0])
    }

    #[test]
    fn interpolated_lookup() {
        let w = ramp_wave();
        assert_eq!(w.at(-5.0), 0.0);
        assert_eq!(w.at(5.0), 0.0);
        assert!((w.at(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(100.0), 1.0);
    }

    #[test]
    fn crossing_detection() {
        let w = ramp_wave();
        let t = w.crossing(0.5, Edge::Rise, 0.0).unwrap();
        assert!((t - 20.0).abs() < 1e-9);
        assert!(w.crossing(0.5, Edge::Fall, 0.0).is_none());
        // Search window respected.
        assert!(w.crossing(0.5, Edge::Rise, 25.0).is_none());
    }

    #[test]
    fn delay_between_edges() {
        let inp = Waveform::new(vec![0.0, 10.0, 12.0, 50.0], vec![0.0, 0.0, 1.0, 1.0]);
        let out = ramp_wave();
        let d = delay_between(&inp, Edge::Rise, &out, Edge::Rise, 1.0, 0.0).unwrap();
        // Input crosses 0.5 at t=11, output at t=20.
        assert!((d.value() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn slew_measurement() {
        let w = ramp_wave();
        // 10% at t=12, 90% at t=28 → 16 ps / 0.8 = 20 ps.
        let s = slew_10_90(&w, Edge::Rise, 1.0, 0.0).unwrap();
        assert!((s.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn falling_slew() {
        let w = Waveform::new(vec![0.0, 10.0, 30.0], vec![1.0, 1.0, 0.0]);
        let s = slew_10_90(&w, Edge::Fall, 1.0, 0.0).unwrap();
        assert!((s.value() - 20.0).abs() < 1e-9);
    }
}
