#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-netlist — gate-level netlists and synthetic benchmarks
//!
//! The netlist is the object the whole closure flow operates on: STA
//! reads it, the fix engine *edits* it (Vt-swap, resize, buffer
//! insertion — the ECO operations of the paper's Fig 1), and the
//! placement/clock crates annotate it.
//!
//! * [`graph`] — the [`Netlist`] structure: cell instances bound to
//!   `tc-liberty` masters, single-driver nets, primary I/O, plus the ECO
//!   edit operations (`swap_master`, `insert_buffer`).
//! * [`level`] — levelization (topological ordering with flops as
//!   sequential boundaries), logic-depth queries, combinational-loop
//!   detection.
//! * [`gen`] — seeded random-logic generators and the synthetic stand-ins
//!   for the paper's Fig 9 benchmark set (c5315, c7552, AES, MPEG2).
//!
//! # Examples
//!
//! ```
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_netlist::gen::{generate, BenchProfile};
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nl = generate(&lib, BenchProfile::c5315(), 42)?;
//! assert!(nl.cell_count() > 1_000);
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod gen;
pub mod graph;
pub mod journal;
pub mod journal_text;
pub mod level;
pub mod scc;
pub mod verilog;

pub use graph::{CellRef, NetRef, Netlist, PinRef};
pub use journal::NetlistEdit;
pub use journal_text::{decode_journal, render_cmds, replay_journal, write_journal, JournalCmd};
pub use level::Levelization;
pub use scc::{combinational_sccs, describe_scc};
pub use verilog::{parse_verilog, parse_verilog_from, write_verilog};
