//! Structural-Verilog export and import.
//!
//! The gate-level netlist is the handoff artifact between synthesis and
//! physical design; this module writes a netlist as a flat structural
//! Verilog module (instances of library masters with named port
//! connections) and parses that subset back, so designs can be stored,
//! diffed, or exchanged with other tools.
//!
//! Subset: one `module` with `input`/`output`/`wire` declarations and
//! instantiations of the form `MASTER name (.A(net), .B(net), .Y(net));`.
//!
//! Import is streaming: [`parse_verilog_from`] consumes any [`BufRead`]
//! one statement at a time, so a million-cell netlist file is never
//! materialized in memory — only the netlist being built grows with the
//! design. [`parse_verilog`] wraps it for in-memory strings.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::io::BufRead;

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, NetId};
use tc_liberty::Library;

use crate::graph::Netlist;

/// Verilog-2005 keywords that a sanitized name must not collide with —
/// an instance or wire called `wire` or `module` would make the emitted
/// file unparseable by any conforming tool (and by our own parser).
const RESERVED: &[&str] = &[
    "always",
    "and",
    "assign",
    "begin",
    "buf",
    "case",
    "endcase",
    "endfunction",
    "endgenerate",
    "endmodule",
    "endtask",
    "else",
    "end",
    "for",
    "function",
    "generate",
    "if",
    "initial",
    "inout",
    "input",
    "integer",
    "localparam",
    "module",
    "nand",
    "negedge",
    "nor",
    "not",
    "or",
    "output",
    "parameter",
    "posedge",
    "real",
    "reg",
    "signed",
    "supply0",
    "supply1",
    "task",
    "time",
    "tri",
    "while",
    "wire",
    "xnor",
    "xor",
];

/// Sanitizes a name into a plain Verilog identifier:
/// `[a-zA-Z_][a-zA-Z0-9_]*`, never a reserved word. Non-ASCII characters
/// (which `char::is_alphanumeric` would wave through) are mapped to `_`
/// like any other illegal byte.
fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.as_bytes()[0].is_ascii_digit() {
        s.insert(0, 'n');
    }
    if RESERVED.contains(&s.as_str()) {
        s.push('_');
    }
    s
}

/// Serializes a netlist to structural Verilog.
///
/// Net and instance identifiers are uniquified against a shared
/// namespace: two distinct names that sanitize to the same identifier
/// (`u.1` vs `u_1`) get numeric suffixes, so the emitted text always
/// reparses to the same structure. Names that are already distinct
/// identifiers — everything our generators produce — come through
/// byte-identical.
pub fn write_verilog(nl: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let mut used: HashSet<String> = HashSet::new();
    let claim = |name: &str, used: &mut HashSet<String>| -> String {
        let base = ident(name);
        if used.insert(base.clone()) {
            return base;
        }
        let mut k = 2usize;
        loop {
            let cand = format!("{base}_{k}");
            if used.insert(cand.clone()) {
                return cand;
            }
            k += 1;
        }
    };
    let net_names: Vec<String> = nl.nets().map(|n| claim(n.name, &mut used)).collect();
    let cell_names: Vec<String> = nl.cells().map(|c| claim(c.name, &mut used)).collect();
    let net_name = |id: NetId| net_names[id.index()].as_str();

    let inputs: Vec<&str> = nl.primary_inputs().iter().map(|&n| net_name(n)).collect();
    let outputs: Vec<&str> = nl.primary_outputs().map(net_name).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().copied());

    let _ = writeln!(out, "module {} ({});", ident(&nl.name), ports.join(", "));
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    // Internal wires: every net that is neither a PI nor a PO.
    for (i, net) in nl.nets().enumerate() {
        let id = NetId::new(i);
        if nl.primary_inputs().contains(&id) || net.is_output {
            continue;
        }
        let _ = writeln!(out, "  wire {};", net_name(id));
    }
    let _ = writeln!(out);

    for (i, cell) in nl.cells().enumerate() {
        let master = lib.cell(cell.master);
        let mut conns: Vec<String> = master
            .input_pins()
            .iter()
            .zip(cell.inputs)
            .map(|(pin, &net)| format!(".{pin}({})", net_name(net)))
            .collect();
        conns.push(format!(".Y({})", net_name(cell.output)));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            master.name,
            cell_names[i],
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Streaming parser state: instances are created as their statements
/// arrive (placeholder inputs, since a pin may name a net declared
/// later); the recorded rewires resolve once the whole file has gone by.
struct Parser<'a> {
    lib: &'a Library,
    nl: Netlist,
    nets: HashMap<String, NetId>,
    inst_names: HashSet<String>,
    outputs: Vec<(String, usize)>,
    scratch: Option<NetId>,
    pending: Vec<(CellId, usize, String, usize)>,
}

impl<'a> Parser<'a> {
    fn new(lib: &'a Library) -> Self {
        Parser {
            lib,
            nl: Netlist::new("parsed"),
            nets: HashMap::new(),
            inst_names: HashSet::new(),
            outputs: Vec::new(),
            scratch: None,
            pending: Vec::new(),
        }
    }

    fn statement(&mut self, stmt: &str, line: usize) -> Result<()> {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest.split('(').next().unwrap_or("parsed").trim();
            self.nl.name = name.to_string();
        } else if let Some(rest) = stmt.strip_prefix("input ") {
            for n in rest.split(',') {
                let n = n.trim();
                if !n.is_empty() {
                    // Re-declaring a name would silently shadow the
                    // earlier net and corrupt every connection that
                    // resolved to it.
                    if self.nets.contains_key(n) {
                        return Err(Error::invalid_input(format!(
                            "line {line}: duplicate net {n}"
                        )));
                    }
                    let id = self.nl.add_input(n);
                    self.nets.insert(n.to_string(), id);
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for n in rest.split(',') {
                self.outputs.push((n.trim().to_string(), line));
            }
        } else if stmt.strip_prefix("wire ").is_some() {
            // Wires are implied by driver outputs; nothing to pre-create.
        } else {
            self.instance(stmt, line)?;
        }
        Ok(())
    }

    /// Instance: `MASTER name (.PIN(net), ...)`. Created immediately
    /// with placeholder inputs; real wiring is deferred to `finish`.
    fn instance(&mut self, stmt: &str, line: usize) -> Result<()> {
        let open = stmt
            .find('(')
            .ok_or_else(|| Error::invalid_input(format!("line {line}: bad statement: {stmt}")))?;
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(Error::invalid_input(format!(
                "line {line}: bad instance head: {stmt}"
            )));
        }
        let (master_name, inst_name) = (head[0], head[1]);
        let master = self
            .lib
            .id_of(master_name)
            .ok_or_else(|| Error::not_found(format!("line {line}: master {master_name}")))?;
        let pins = self.lib.cell(master).input_pins();

        // The closing paren must come after the opening one: on input
        // like `X) Y(;` a naive `rfind` slice would panic with an
        // inverted range instead of reporting the malformed statement.
        let close = match stmt.rfind(')') {
            Some(c) if c > open => c,
            Some(_) => {
                return Err(Error::invalid_input(format!(
                    "line {line}: unterminated connection list: {stmt}"
                )))
            }
            None => stmt.len(),
        };
        let conns_str = &stmt[open + 1..close];
        let mut conns: Vec<(&str, &str)> = Vec::with_capacity(pins.len() + 1);
        for c in conns_str.split(',') {
            let c = c.trim().trim_start_matches('.');
            let (pin, net) = c
                .split_once('(')
                .ok_or_else(|| Error::invalid_input(format!("line {line}: bad connection: {c}")))?;
            conns.push((pin.trim(), net.trim_end_matches(')').trim()));
        }

        if !self.inst_names.insert(inst_name.to_string()) {
            return Err(Error::invalid_input(format!(
                "line {line}: duplicate instance {inst_name}"
            )));
        }
        let scratch = match self.scratch {
            Some(s) => s,
            None => {
                let s = self
                    .nl
                    .primary_inputs()
                    .first()
                    .copied()
                    .unwrap_or_else(|| self.nl.add_input("__scratch__"));
                self.scratch = Some(s);
                s
            }
        };
        let placeholder = vec![scratch; pins.len()];
        let (cid, out_net) =
            self.nl
                .add_cell(inst_name.to_string(), self.lib, master, &placeholder)?;
        // The instance's Y connection names its output net.
        let y = conns.iter().find(|(p, _)| *p == "Y").ok_or_else(|| {
            Error::invalid_input(format!("line {line}: {inst_name}: no Y connection"))
        })?;
        if self.nets.contains_key(y.1) {
            return Err(Error::invalid_input(format!(
                "line {line}: duplicate net {}",
                y.1
            )));
        }
        self.nets.insert(y.1.to_string(), out_net);
        for (idx, pin) in pins.iter().enumerate() {
            let conn = conns.iter().find(|(p, _)| p == pin).ok_or_else(|| {
                Error::invalid_input(format!("line {line}: {inst_name}: missing pin {pin}"))
            })?;
            self.pending.push((cid, idx, conn.1.to_string(), line));
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Netlist> {
        for (cid, pin, net_name, line) in std::mem::take(&mut self.pending) {
            let net = *self
                .nets
                .get(&net_name)
                .ok_or_else(|| Error::not_found(format!("line {line}: net {net_name}")))?;
            self.nl
                .rewire_input(crate::graph::PinRef { cell: cid, pin }, net);
        }
        for (o, line) in std::mem::take(&mut self.outputs) {
            let net = *self
                .nets
                .get(&o)
                .ok_or_else(|| Error::not_found(format!("line {line}: output net {o}")))?;
            self.nl.mark_output(net);
        }
        self.nl.compact();
        Ok(self.nl)
    }
}

/// Parses the structural subset produced by [`write_verilog`] from any
/// buffered reader, one `;`-terminated statement at a time — the file is
/// never held in memory as a whole.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for unknown masters, undeclared nets,
/// missing pins, or syntax outside the supported subset; I/O errors are
/// wrapped as [`Error::InvalidInput`]. Every error reports the line the
/// offending statement started on.
pub fn parse_verilog_from<R: BufRead>(mut reader: R, lib: &Library) -> Result<Netlist> {
    let mut parser = Parser::new(lib);
    let mut line = String::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    // Line on which the statement currently accumulating in `buf` began.
    let mut stmt_line = 1usize;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| Error::invalid_input(format!("line {}: read: {e}", lineno + 1)))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        // Strip line comments, join continuation lines with a space.
        let code = line.split("//").next().unwrap_or("").trim_end();
        if buf.is_empty() {
            stmt_line = lineno;
        }
        if !buf.is_empty() {
            buf.push(' ');
        }
        buf.push_str(code);
        while let Some(pos) = buf.find(';') {
            parser.statement(&buf[..pos], stmt_line)?;
            buf.drain(..=pos);
            // Whatever trails the `;` came from the current line.
            stmt_line = lineno;
        }
    }
    parser.statement(&buf, stmt_line)?;
    parser.finish()
}

/// Parses the structural subset produced by [`write_verilog`] back into
/// a [`Netlist`] bound to `lib` (in-memory convenience wrapper around
/// [`parse_verilog_from`]).
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for unknown masters, undeclared nets,
/// missing pins, or syntax outside the supported subset.
pub fn parse_verilog(text: &str, lib: &Library) -> Result<Netlist> {
    parse_verilog_from(text.as_bytes(), lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, BenchProfile};
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = lib();
        let orig = generate(&lib, BenchProfile::tiny(), 55).unwrap();
        let text = write_verilog(&orig, &lib);
        assert!(text.contains("module tiny"));
        assert!(text.contains("endmodule"));

        let parsed = parse_verilog(&text, &lib).unwrap();
        parsed.validate(&lib).unwrap();
        assert_eq!(parsed.cell_count(), orig.cell_count());
        assert_eq!(
            parsed.primary_outputs().count(),
            orig.primary_outputs().count()
        );

        // Per-instance master binding survives.
        for cell in orig.cells() {
            let pc = parsed
                .cell_named(cell.name)
                .expect("instance name preserved");
            assert_eq!(parsed.cell(pc).master, cell.master, "cell {}", cell.name);
        }

        // Connectivity: same driver-master for every input pin.
        for cell in orig.cells() {
            let pid = parsed.cell_named(cell.name).unwrap();
            for (i, &net) in cell.inputs.iter().enumerate() {
                let want_driver = orig.net(net).driver.map(|d| orig.cell(d).name.to_string());
                let pnet = parsed.cell(pid).inputs[i];
                let got_driver = parsed
                    .net(pnet)
                    .driver
                    .map(|d| parsed.cell(d).name.to_string());
                assert_eq!(want_driver, got_driver, "cell {} pin {i}", cell.name);
            }
        }
    }

    #[test]
    fn streaming_parse_matches_in_memory_parse() {
        let lib = lib();
        let orig = generate(&lib, BenchProfile::tiny(), 55).unwrap();
        let text = write_verilog(&orig, &lib);
        // A deliberately tiny buffer forces many refills mid-statement.
        let reader = std::io::BufReader::with_capacity(17, text.as_bytes());
        let streamed = parse_verilog_from(reader, &lib).unwrap();
        let direct = parse_verilog(&text, &lib).unwrap();
        assert_eq!(write_verilog(&streamed, &lib), write_verilog(&direct, &lib));
    }

    #[test]
    fn parse_rejects_unknown_master() {
        let lib = lib();
        let bad = "module m (a); input a; FOO_X1 u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn parse_rejects_missing_pin() {
        let lib = lib();
        let bad = "module m (a); input a; NAND2_X1_SVT u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(ident("a.b-c"), "a_b_c");
        assert_eq!(ident("3x"), "n3x");
        // Non-ASCII alphanumerics are not legal Verilog identifier
        // characters even though `char::is_alphanumeric` accepts them.
        assert_eq!(ident("née"), "n_e");
        assert_eq!(ident("λx"), "_x");
        // Reserved words are escaped, not emitted verbatim.
        assert_eq!(ident("wire"), "wire_");
        assert_eq!(ident("module"), "module_");
        assert_eq!(ident(""), "n");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let lib = lib();
        let bad = "module m (a);\ninput a;\nFOO_X1 u1 (.A(a), .Y(b));\nendmodule\n";
        let err = parse_verilog(bad, &lib).unwrap_err().to_string();
        assert!(err.contains("line 3"), "no line number in: {err}");

        let bad = "module m (a);\ninput a;\noutput q;\nendmodule\n";
        let err = parse_verilog(bad, &lib).unwrap_err().to_string();
        assert!(err.contains("line 3"), "no line number in: {err}");
    }

    #[test]
    fn inverted_parens_are_an_error_not_a_panic() {
        // `rfind(')')` before the first '(' used to build an inverted
        // slice range and panic.
        let lib = lib();
        let bad = "module m (a); input a; X) Y(; endmodule";
        let err = parse_verilog(bad, &lib).unwrap_err().to_string();
        assert!(err.contains("line 1"), "no line number in: {err}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let lib = lib();
        let dup_net = "module m (a); input a, a; endmodule";
        assert!(parse_verilog(dup_net, &lib).is_err());
        let dup_inst = "module m (a); input a;\n\
                        INV_X1_SVT u1 (.A(a), .Y(x));\n\
                        INV_X1_SVT u1 (.A(a), .Y(y));\nendmodule";
        let err = parse_verilog(dup_inst, &lib).unwrap_err().to_string();
        assert!(err.contains("duplicate instance"), "got: {err}");
    }

    #[test]
    fn writer_uniquifies_colliding_identifiers() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        // Both sanitize to `a_1`; the writer must keep them distinct.
        let a = nl.add_input("a.1");
        let b = nl.add_input("a_1");
        let inv = lib.id_of("INV_X1_SVT").unwrap();
        let (_, out) = nl.add_cell("u1", &lib, inv, &[a]).unwrap();
        let (_, out2) = nl.add_cell("u2", &lib, inv, &[b]).unwrap();
        nl.mark_output(out);
        nl.mark_output(out2);
        let text = write_verilog(&nl, &lib);
        assert!(text.contains("input a_1;"), "{text}");
        assert!(text.contains("input a_1_2;"), "{text}");
        let reparsed = parse_verilog(&text, &lib).unwrap();
        assert_eq!(reparsed.cell_count(), 2);
        assert_eq!(write_verilog(&reparsed, &lib), text);
    }
}
