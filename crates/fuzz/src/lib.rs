#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-fuzz — seeded mutation fuzzing for every ingest surface
//!
//! Timing closure dies on malformed interchange data long before it dies
//! on WNS: every handoff in the flow (parasitics, netlists, libraries,
//! run artifacts, ECO journals) is a parser that hostile or merely
//! truncated input will eventually reach. This crate is a
//! zero-dependency, fully deterministic mutation-fuzz harness over all
//! eight of the workspace's parser entry points:
//!
//! | target    | parser                                           |
//! |-----------|--------------------------------------------------|
//! | `spef`    | `tc_interconnect::parse_spef_from`               |
//! | `verilog` | `tc_netlist::parse_verilog_from`                 |
//! | `liberty` | `tc_liberty::parse_liberty`                      |
//! | `json`    | `tc_obs::JsonValue::parse`                       |
//! | `journal` | `tc_netlist::decode_journal` + `replay_journal`  |
//! | `tcdiff`  | sidecar load: `JsonValue::parse` + `diff` + `check_trace` |
//! | `waiver`  | `tc_lint::decode_waivers` + `render_waivers`     |
//! | `prof`    | `tc_prof::Profile::parse` (span-profile sidecars) |
//!
//! The harness seeds its corpus from the repo's **own writers** (the
//! Verilog/SPEF/Liberty emitters, `RunArtifact` JSON, journal export),
//! applies seeded byte- and token-level mutators, and asserts three
//! invariants on every input:
//!
//! 1. **Never panic** — every entry point is driven under
//!    `catch_unwind`; a panic is a finding.
//! 2. **Positioned errors** — every `Err` must name a line, byte,
//!    event, or entry offset; a bare message is a finding.
//! 3. **Round-trip stability** — when an input is *accepted*, emitting
//!    and reparsing it must be a fixpoint (`emit(parse(emit(parse(x))))
//!    == emit(parse(x))`), and replayed journals must leave the netlist
//!    valid (or, on failure, exactly rolled back).
//!
//! Randomness comes exclusively from `tc_core::rng::Rng` streams, so a
//! `(seed, target)` pair replays bit-identically on any machine. Found
//! violations are shrunk (greedy ddmin over lines, then bytes) and can
//! be written out as regression corpus entries under
//! `crates/fuzz/corpus/<target>/`, which `tests/corpus.rs` replays on
//! every `cargo test` run.

pub mod mutate;
pub mod runner;
pub mod target;

pub use runner::{run, shrink, Finding, FuzzConfig};
pub use target::{Env, TargetKind, Verdict, Violation};
