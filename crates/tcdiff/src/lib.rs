#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tcdiff — the regression gate for run artifacts and BENCH sidecars
//!
//! The workspace's harnesses commit `BENCH_*.json` sidecars and emit
//! [`tc_obs::RunArtifact`] documents, but a sidecar nobody diffs is
//! write-only telemetry: a perf or determinism regression ships
//! silently. This crate compares two such JSON documents field by
//! field and exits nonzero on regression, with two field classes:
//!
//! * **Exact fields** — everything that must be bit-stable across
//!   machines and worker counts: fingerprints, WNS/TNS and other
//!   picosecond results, workload dimensions, edit counts, booleans,
//!   strings. Any difference is a regression.
//! * **Timing fields** — wall-clock measurements (`*_ms`, `*_us`,
//!   `*_ns`, `wall*`, `speedup*`, `elapsed*`, `idle*`): compared under
//!   a configurable relative tolerance, and downgradeable to
//!   informational (`--timing-informational`) for shared CI runners
//!   whose wall clock proves nothing.
//! * **Memory fields** — allocator telemetry (`*_bytes`, `*_allocs`,
//!   `*_frees`): tolerance-gated like timing but under their own,
//!   wider knob (`--mem-tol`), because allocator behaviour — arena
//!   growth policy, thread count, even libc version — moves the counts
//!   between perfectly healthy runs. They are **never** compared
//!   bit-exactly, and `--timing-informational` downgrades them too.
//!
//! The unit suffix carries the distinction: `ms`/`us`/`ns` name *wall
//! clock* (host-dependent), while `ps` names *simulated time* — a
//! deterministic engine result that must match exactly.
//!
//! Fields that describe the machine rather than the run
//! (`host_threads`, the `knobs.*` block) are informational: shown in
//! the table, never gating.
//!
//! [`check_trace`] additionally validates a Chrome `trace_event`
//! export: well-formed JSON, per-thread monotonic timestamps, balanced
//! B/E events, and a minimum thread count.

use tc_obs::JsonValue;

/// How a flattened field participates in the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldClass {
    /// Must match bitwise (numbers compared exactly).
    Exact,
    /// Wall-clock measurement: tolerance-gated (or informational).
    Timing,
    /// Heap telemetry: tolerance-gated under [`DiffOptions::mem_tol`]
    /// (or informational) — never bit-exact.
    Memory,
    /// Machine description: never gates.
    Info,
}

/// One field's comparison outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowStatus {
    /// Values agree (exact fields) or are within tolerance (timing).
    Match,
    /// Timing field moved beyond tolerance but timing is informational.
    Drift,
    /// Exact mismatch, out-of-tolerance timing, or structural
    /// difference — the gate fails.
    Regression,
    /// Informational field; never gates.
    Info,
}

/// One row of the delta table.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Flattened field path, e.g. `grid[2].wall_ms`.
    pub path: String,
    /// Field class the path was assigned.
    pub class: FieldClass,
    /// Baseline value (rendered), or `—` if absent.
    pub baseline: String,
    /// Candidate value (rendered), or `—` if absent.
    pub candidate: String,
    /// Relative delta in percent for numeric pairs.
    pub delta_pct: Option<f64>,
    /// Outcome.
    pub status: RowStatus,
}

/// Options controlling [`diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative tolerance for timing fields (fraction, not percent).
    pub tol: f64,
    /// Relative tolerance for memory fields (fraction, not percent).
    /// Wider than `tol` by default: allocator counts are stable within
    /// a host but not across libc versions or thread schedules.
    pub mem_tol: f64,
    /// Downgrade out-of-tolerance timing *and memory* fields from
    /// regression to drift (for shared CI runners).
    pub timing_informational: bool,
    /// Gate memory fields even when timing is informational: an
    /// out-of-tolerance `*_bytes`/`*_allocs`/`*_frees` field is a
    /// regression regardless of `timing_informational`. Heap telemetry
    /// is host-stable in a way wall clock is not, so CI can hold the
    /// memory line while ignoring runner-speed noise.
    pub mem_strict: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol: 0.25,
            mem_tol: 0.5,
            timing_informational: true,
            mem_strict: false,
        }
    }
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared field, in path order.
    pub rows: Vec<DiffRow>,
    /// Number of gating failures.
    pub regressions: usize,
    /// Number of informational timing drifts.
    pub drifts: usize,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions == 0
    }

    /// Renders the per-metric delta table (only non-matching rows plus
    /// a summary unless `verbose`).
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let shown: Vec<&DiffRow> = self
            .rows
            .iter()
            .filter(|r| verbose || r.status != RowStatus::Match)
            .collect();
        if !shown.is_empty() {
            let wp = shown.iter().map(|r| r.path.len()).max().unwrap_or(4).max(5);
            let wa = shown
                .iter()
                .map(|r| r.baseline.len())
                .max()
                .unwrap_or(8)
                .max(8);
            let wb = shown
                .iter()
                .map(|r| r.candidate.len())
                .max()
                .unwrap_or(9)
                .max(9);
            out.push_str(&format!(
                "{:<wp$}  {:<6}  {:>wa$}  {:>wb$}  {:>8}  status\n",
                "field", "class", "baseline", "candidate", "delta"
            ));
            for r in shown {
                let class = match r.class {
                    FieldClass::Exact => "exact",
                    FieldClass::Timing => "timing",
                    FieldClass::Memory => "memory",
                    FieldClass::Info => "info",
                };
                let delta = r
                    .delta_pct
                    .map_or_else(|| "—".to_string(), |d| format!("{d:+.1}%"));
                let status = match r.status {
                    RowStatus::Match => "ok",
                    RowStatus::Drift => "DRIFT (informational)",
                    RowStatus::Regression => "REGRESSION",
                    RowStatus::Info => "info",
                };
                out.push_str(&format!(
                    "{:<wp$}  {:<6}  {:>wa$}  {:>wb$}  {:>8}  {}\n",
                    r.path, class, r.baseline, r.candidate, delta, status
                ));
            }
        }
        out.push_str(&format!(
            "{} field(s) compared: {} regression(s), {} timing drift(s)\n",
            self.rows.len(),
            self.regressions,
            self.drifts
        ));
        out
    }
}

/// A scalar leaf of a flattened JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Flat {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Flat {
    fn render(&self) -> String {
        match self {
            Flat::Num(x) => {
                if *x == x.trunc() && x.abs() < 9.0e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x:.6}")
                }
            }
            Flat::Str(s) => s.clone(),
            Flat::Bool(b) => b.to_string(),
            Flat::Null => "null".to_string(),
        }
    }
}

/// Flattens a JSON tree into `(path, leaf)` pairs:
/// `{"a":{"b":[1]}}` → `[("a.b[0]", Num(1))]`.
pub fn flatten(v: &JsonValue) -> Vec<(String, Flat)> {
    let mut out = Vec::new();
    flatten_into(v, String::new(), &mut out);
    out
}

fn flatten_into(v: &JsonValue, path: String, out: &mut Vec<(String, Flat)>) {
    match v {
        JsonValue::Null => out.push((path, Flat::Null)),
        JsonValue::Bool(b) => out.push((path, Flat::Bool(*b))),
        JsonValue::Num(x) => out.push((path, Flat::Num(*x))),
        JsonValue::Str(s) => out.push((path, Flat::Str(s.clone()))),
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_into(item, format!("{path}[{i}]"), out);
            }
            if items.is_empty() {
                out.push((format!("{path}[]"), Flat::Null));
            }
        }
        JsonValue::Obj(pairs) => {
            for (k, item) in pairs {
                // An empty key would splice its children into the parent
                // level, and a key containing path syntax (`.`, `[`, `]`,
                // quotes) could collide with a genuinely nested path —
                // both let distinct documents flatten identically. Render
                // such keys as quoted segments instead.
                let seg = if k.is_empty() || k.contains(['.', '[', ']', '"', '\\']) {
                    format!("{k:?}")
                } else {
                    k.clone()
                };
                let child = if path.is_empty() {
                    seg
                } else {
                    format!("{path}.{seg}")
                };
                flatten_into(item, child, out);
            }
        }
    }
}

/// Wall-clock unit/word tokens that mark a field as timing.
const TIMING_TOKENS: [&str; 7] = ["ms", "us", "ns", "wall", "speedup", "elapsed", "idle"];

/// Allocator-telemetry tokens that mark a field as memory. Checked
/// before the timing vocabulary so `peak_heap_bytes` and friends never
/// fall through to exact comparison.
const MEMORY_TOKENS: [&str; 3] = ["bytes", "allocs", "frees"];

/// Classifies a flattened path. The *leaf* segment decides: its
/// `_`-separated tokens are matched against the memory vocabulary
/// first, then the wall-clock vocabulary. `host_threads` and everything
/// under `knobs.` is machine description (informational).
pub fn classify(path: &str) -> FieldClass {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    if leaf == "host_threads" || path.starts_with("knobs.") || path.contains(".knobs.") {
        return FieldClass::Info;
    }
    if leaf
        .split('_')
        .any(|tok| MEMORY_TOKENS.contains(&tok.to_ascii_lowercase().as_str()))
    {
        return FieldClass::Memory;
    }
    if leaf
        .split('_')
        .any(|tok| TIMING_TOKENS.contains(&tok.to_ascii_lowercase().as_str()))
    {
        return FieldClass::Timing;
    }
    FieldClass::Exact
}

/// Schema guard: if both documents declare `schema_version`, the
/// versions must match — comparing across schema revisions produces
/// nonsense deltas.
///
/// # Errors
///
/// Returns the two versions on mismatch.
pub fn check_schema(a: &JsonValue, b: &JsonValue) -> Result<(), (f64, f64)> {
    let version = |v: &JsonValue| match v {
        JsonValue::Obj(pairs) => pairs.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("schema_version", JsonValue::Num(x)) => Some(*x),
            _ => None,
        }),
        _ => None,
    };
    match (version(a), version(b)) {
        (Some(va), Some(vb)) if va != vb => Err((va, vb)),
        _ => Ok(()),
    }
}

/// Compares two parsed documents. `a` is the baseline, `b` the
/// candidate.
pub fn diff(a: &JsonValue, b: &JsonValue, opts: &DiffOptions) -> DiffReport {
    let fa = flatten(a);
    let fb = flatten(b);
    let mut report = DiffReport::default();
    let index_b: std::collections::BTreeMap<&str, &Flat> =
        fb.iter().map(|(p, v)| (p.as_str(), v)).collect();
    let mut seen = std::collections::BTreeSet::new();
    for (path, va) in &fa {
        seen.insert(path.as_str());
        let class = classify(path);
        let row = match index_b.get(path.as_str()) {
            None => DiffRow {
                path: path.clone(),
                class,
                baseline: va.render(),
                candidate: "—".to_string(),
                delta_pct: None,
                status: if class == FieldClass::Info {
                    RowStatus::Info
                } else {
                    RowStatus::Regression
                },
            },
            Some(vb) => compare(path, class, va, vb, opts),
        };
        tally(&mut report, row);
    }
    for (path, vb) in &fb {
        if seen.contains(path.as_str()) {
            continue;
        }
        let class = classify(path);
        tally(
            &mut report,
            DiffRow {
                path: path.clone(),
                class,
                baseline: "—".to_string(),
                candidate: vb.render(),
                delta_pct: None,
                status: if class == FieldClass::Info {
                    RowStatus::Info
                } else {
                    RowStatus::Regression
                },
            },
        );
    }
    report
}

fn tally(report: &mut DiffReport, row: DiffRow) {
    match row.status {
        RowStatus::Regression => report.regressions += 1,
        RowStatus::Drift => report.drifts += 1,
        _ => {}
    }
    report.rows.push(row);
}

fn compare(path: &str, class: FieldClass, va: &Flat, vb: &Flat, opts: &DiffOptions) -> DiffRow {
    let delta_pct = match (va, vb) {
        (Flat::Num(a), Flat::Num(b)) => {
            let denom = a.abs().max(b.abs());
            (denom > 0.0).then(|| 100.0 * (b - a) / denom)
        }
        _ => None,
    };
    let status = match class {
        FieldClass::Info => RowStatus::Info,
        FieldClass::Exact => {
            let equal = match (va, vb) {
                // Exact numbers compare by bit pattern of the parsed
                // f64 (so -0.0 vs 0.0 and NaN-as-null stay visible).
                (Flat::Num(a), Flat::Num(b)) => a.to_bits() == b.to_bits(),
                (a, b) => a == b,
            };
            if equal {
                RowStatus::Match
            } else {
                RowStatus::Regression
            }
        }
        FieldClass::Timing | FieldClass::Memory => {
            let tol = if class == FieldClass::Memory {
                opts.mem_tol
            } else {
                opts.tol
            };
            let within = match (va, vb) {
                (Flat::Num(a), Flat::Num(b)) => {
                    let denom = a.abs().max(b.abs());
                    denom == 0.0 || ((b - a).abs() / denom) <= tol
                }
                (a, b) => a == b,
            };
            if within {
                RowStatus::Match
            } else if class == FieldClass::Memory && opts.mem_strict {
                RowStatus::Regression
            } else if opts.timing_informational {
                RowStatus::Drift
            } else {
                RowStatus::Regression
            }
        }
    };
    DiffRow {
        path: path.to_string(),
        class,
        baseline: va.render(),
        candidate: vb.render(),
        delta_pct,
        status,
    }
}

/// Summary statistics of a validated Chrome trace.
#[derive(Clone, Debug)]
pub struct TraceCheck {
    /// Total events.
    pub events: usize,
    /// Distinct thread ids.
    pub threads: usize,
    /// Deepest B-nesting seen on any thread.
    pub max_depth: usize,
    /// `otherData.dropped_events`, if present.
    pub dropped: u64,
}

/// Validates a Chrome `trace_event` JSON document: parseable, every
/// event carries `ph`/`ts`/`tid`, per-thread timestamps are monotonic
/// (non-decreasing), and B/E events balance per thread. `M` metadata
/// records (`thread_name`) are accepted anywhere and affect neither
/// depth nor the timestamp order of their lane. Ring-overflow traces
/// (`dropped_events > 0`) are a **hard finding**: drops orphan events
/// and silently truncate any profile derived from the trace, so a
/// gating check must fail them, not forgive the imbalance they cause.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_trace(text: &str, min_threads: usize) -> Result<TraceCheck, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let JsonValue::Obj(pairs) = &doc else {
        return Err("trace document is not an object".to_string());
    };
    let events = pairs
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("traceEvents", JsonValue::Arr(items)) => Some(items),
            _ => None,
        })
        .ok_or("no traceEvents array")?;
    let dropped = pairs
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("otherData", JsonValue::Obj(inner)) => {
                inner.iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("dropped_events", JsonValue::Num(x)) => Some(*x as u64),
                    _ => None,
                })
            }
            _ => None,
        })
        .unwrap_or(0);
    if dropped > 0 {
        return Err(format!(
            "trace records {dropped} dropped event(s) — ring overflow truncates span \
             accounting; re-record with a larger enable_trace capacity"
        ));
    }
    let field = |ev: &JsonValue, name: &str| -> Option<JsonValue> {
        match ev {
            JsonValue::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    let mut max_depth = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = match field(ev, "ph") {
            Some(JsonValue::Str(s)) => s,
            _ => return Err(format!("event {i}: missing ph")),
        };
        if ph == "M" {
            // Metadata records name threads/processes; they carry ts 0
            // regardless of position, so they stay out of the
            // monotonicity and balance bookkeeping.
            if field(ev, "name").is_none() {
                return Err(format!("event {i}: metadata record missing name"));
            }
            continue;
        }
        let ts = match field(ev, "ts") {
            Some(JsonValue::Num(x)) if x.is_finite() && x >= 0.0 => x,
            _ => return Err(format!("event {i}: missing/invalid ts")),
        };
        let tid = match field(ev, "tid") {
            Some(JsonValue::Num(x)) if x >= 0.0 => x as u64,
            _ => return Err(format!("event {i}: missing/invalid tid")),
        };
        if field(ev, "name").is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: timestamp {ts} regresses below {prev} on tid {tid}"
                ));
            }
        }
        last_ts.insert(tid, ts);
        let d = depth.entry(tid).or_insert(0);
        match ph.as_str() {
            "B" => {
                *d += 1;
                max_depth = max_depth.max(*d as usize);
            }
            "E" => {
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: unmatched E on tid {tid}"));
                }
            }
            "C" => {}
            other => return Err(format!("event {i}: unexpected ph `{other}`")),
        }
    }
    for (tid, d) in &depth {
        if *d != 0 {
            return Err(format!("tid {tid}: {d} unbalanced B event(s)"));
        }
    }
    let threads = last_ts.len();
    if threads < min_threads {
        return Err(format!(
            "trace has {threads} thread(s), expected >= {min_threads}"
        ));
    }
    Ok(TraceCheck {
        events: events.len(),
        threads,
        max_depth,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JsonValue {
        JsonValue::parse(s).expect("test doc parses")
    }

    #[test]
    fn ambiguous_keys_flatten_to_distinct_paths() {
        // An empty key must not splice its children into the parent
        // level: `profile` and `{"":{"profile":…}}` are different fields.
        let doc = parse(r#"{"profile":"tiny","":{"profile":"y"},"a.b":1,"a":{"b":2}}"#);
        let flat = flatten(&doc);
        let mut paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        paths.sort_unstable();
        let n = paths.len();
        paths.dedup();
        assert_eq!(
            paths.len(),
            n,
            "flatten produced colliding paths: {paths:?}"
        );
        // Self-diff of any accepted document is clean.
        let report = diff(&doc, &doc, &DiffOptions::default());
        assert!(
            report.ok(),
            "self-diff not clean:\n{}",
            report.render(false)
        );
    }

    #[test]
    fn classification_separates_wall_clock_from_results() {
        assert_eq!(classify("total_full_ms"), FieldClass::Timing);
        assert_eq!(classify("grid[2].wall_ms"), FieldClass::Timing);
        assert_eq!(classify("grid[2].speedup_vs_1"), FieldClass::Timing);
        assert_eq!(classify("per_fix_kind[0].mean_full_us"), FieldClass::Timing);
        assert_eq!(classify("metrics.spans[0].total_ns"), FieldClass::Timing);
        assert_eq!(classify("iterations[0].elapsed_ms"), FieldClass::Timing);
        // Picoseconds are simulated time — engine results, exact.
        assert_eq!(classify("period_ps"), FieldClass::Exact);
        assert_eq!(classify("iterations[0].wns_after_ps"), FieldClass::Exact);
        assert_eq!(classify("merged_fingerprint"), FieldClass::Exact);
        assert_eq!(classify("arcs_recomputed"), FieldClass::Exact);
        assert_eq!(classify("host_threads"), FieldClass::Info);
        assert_eq!(classify("knobs.TC_PAR_THREADS"), FieldClass::Info);
        // Allocator telemetry is its own class — never exact.
        assert_eq!(classify("memory.peak_heap_bytes"), FieldClass::Memory);
        assert_eq!(classify("memory.total_allocs"), FieldClass::Memory);
        assert_eq!(classify("memory.total_frees"), FieldClass::Memory);
        assert_eq!(classify("memory.vm_hwm_bytes"), FieldClass::Memory);
        assert_eq!(classify("metrics.spans[0].net_bytes"), FieldClass::Memory);
        assert_eq!(classify("profiles[1].build.peak_bytes"), FieldClass::Memory);
    }

    #[test]
    fn memory_fields_gate_by_their_own_tolerance() {
        let a = parse(r#"{"memory":{"peak_heap_bytes":1000000,"total_allocs":500}}"#);
        let b = parse(r#"{"memory":{"peak_heap_bytes":1400000,"total_allocs":700}}"#);
        let strict = DiffOptions {
            tol: 0.25,
            mem_tol: 0.5,
            timing_informational: false,
            mem_strict: false,
        };
        // 40% growth sits inside mem_tol=0.5 even though tol=0.25
        // would fail it — memory uses its own knob.
        assert!(diff(&a, &b, &strict).ok());
        let c = parse(r#"{"memory":{"peak_heap_bytes":3000000,"total_allocs":500}}"#);
        let rep = diff(&a, &c, &strict);
        assert!(!rep.ok(), "3x peak fails the strict memory gate");
        let informational = DiffOptions {
            timing_informational: true,
            ..strict
        };
        let rep = diff(&a, &c, &informational);
        assert!(rep.ok(), "informational mode downgrades memory too");
        assert_eq!(rep.drifts, 1);
    }

    #[test]
    fn mem_strict_gates_memory_despite_informational_timing() {
        let a = parse(r#"{"peak_heap_bytes":1000000,"wall_ms":100.0}"#);
        let b = parse(r#"{"peak_heap_bytes":3000000,"wall_ms":300.0}"#);
        let opts = DiffOptions {
            mem_strict: true,
            ..DiffOptions::default()
        };
        let rep = diff(&a, &b, &opts);
        assert!(!rep.ok(), "3x heap fails --mem-strict");
        assert_eq!(rep.regressions, 1, "only the memory field gates");
        assert_eq!(rep.drifts, 1, "wall clock stays informational");
        // Inside mem-tol still passes.
        let c = parse(r#"{"peak_heap_bytes":1200000,"wall_ms":100.0}"#);
        assert!(diff(&a, &c, &opts).ok());
    }

    #[test]
    fn memory_fields_are_never_compared_exactly() {
        // A one-byte wiggle inside tolerance must pass even strict.
        let a = parse(r#"{"live_bytes":1048576}"#);
        let b = parse(r#"{"live_bytes":1048577}"#);
        let strict = DiffOptions {
            tol: 0.0,
            mem_tol: 0.01,
            timing_informational: false,
            mem_strict: false,
        };
        let rep = diff(&a, &b, &strict);
        assert!(rep.ok());
        assert_eq!(rep.rows[0].class, FieldClass::Memory);
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = parse(r#"{"fingerprint":"abc","wall_ms":12.5,"cells":100}"#);
        let report = diff(&doc, &doc, &DiffOptions::default());
        assert!(report.ok());
        assert_eq!(report.regressions, 0);
        assert!(report.rows.iter().all(|r| r.status == RowStatus::Match));
    }

    #[test]
    fn fingerprint_perturbation_is_a_regression() {
        let a = parse(r#"{"merged_fingerprint":"9dd7ec5240","wall_ms":10.0}"#);
        let b = parse(r#"{"merged_fingerprint":"deadbeef00","wall_ms":10.0}"#);
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(!report.ok());
        assert_eq!(report.regressions, 1);
    }

    #[test]
    fn timing_moves_gate_by_tolerance_and_mode() {
        let a = parse(r#"{"wall_ms":100.0}"#);
        let b = parse(r#"{"wall_ms":200.0}"#);
        let strict = DiffOptions {
            timing_informational: false,
            ..DiffOptions::default()
        };
        assert!(!diff(&a, &b, &strict).ok(), "2x slower fails strict gate");
        let informational = DiffOptions {
            timing_informational: true,
            ..DiffOptions::default()
        };
        let rep = diff(&a, &b, &informational);
        assert!(rep.ok(), "informational mode never gates on timing");
        assert_eq!(rep.drifts, 1);
        let c = parse(r#"{"wall_ms":110.0}"#);
        assert!(diff(&a, &c, &strict).ok(), "10% is inside 25% tolerance");
    }

    #[test]
    fn missing_and_extra_fields_are_regressions() {
        let a = parse(r#"{"cells":100,"nets":200}"#);
        let b = parse(r#"{"cells":100,"extra":1}"#);
        let report = diff(&a, &b, &DiffOptions::default());
        assert_eq!(report.regressions, 2, "one missing + one extra");
    }

    #[test]
    fn schema_versions_must_match() {
        let a = parse(r#"{"schema_version":1,"x":1}"#);
        let b = parse(r#"{"schema_version":2,"x":1}"#);
        assert_eq!(check_schema(&a, &b), Err((1.0, 2.0)));
        assert_eq!(check_schema(&a, &a), Ok(()));
        // Documents without a version (BENCH sidecars) are accepted.
        let c = parse(r#"{"x":1}"#);
        assert_eq!(check_schema(&a, &c), Ok(()));
    }

    #[test]
    fn trace_check_validates_balance_and_monotonicity() {
        let good = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"b","ph":"B","ts":2.0,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":3.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":4.0,"pid":1,"tid":0},
            {"name":"t","ph":"B","ts":1.5,"pid":1,"tid":1},
            {"name":"c","ph":"C","ts":2.0,"pid":1,"tid":1,"args":{"value":3}},
            {"name":"t","ph":"E","ts":2.5,"pid":1,"tid":1}
        ],"otherData":{"dropped_events":0}}"#;
        let check = check_trace(good, 2).expect("valid trace");
        assert_eq!(check.threads, 2);
        assert_eq!(check.max_depth, 2);
        assert_eq!(check.events, 7);

        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(check_trace(unbalanced, 1).is_err());

        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(check_trace(backwards, 1).is_err());

        assert!(check_trace("not json", 1).is_err());
    }

    #[test]
    fn trace_check_hard_fails_on_dropped_events() {
        // Ring overflow truncates span accounting, so a non-zero drop
        // count is a finding in itself — even when the surviving events
        // happen to balance.
        let truncated = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0}
        ],"otherData":{"dropped_events":3}}"#;
        let err = check_trace(truncated, 1).expect_err("drops are a hard finding");
        assert!(err.contains("3 dropped event(s)"), "{err}");
        assert!(err.contains("enable_trace"), "{err}");
    }

    #[test]
    fn trace_check_accepts_thread_name_metadata() {
        // M records carry ts 0 and sit before events whose lanes they
        // name; they must not trip monotonicity or balance.
        let with_meta = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"main"}},
            {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"tc-par-0"}},
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0},
            {"name":"b","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2.0,"pid":1,"tid":1}
        ],"otherData":{"dropped_events":0}}"#;
        let check = check_trace(with_meta, 2).expect("metadata accepted");
        assert_eq!(check.threads, 2, "threads counted from real events");
        assert_eq!(check.events, 6, "metadata records count as events");

        let nameless_meta = r#"{"traceEvents":[
            {"ph":"M","ts":0,"pid":1,"tid":0}
        ]}"#;
        assert!(check_trace(nameless_meta, 0).is_err());
    }
}
